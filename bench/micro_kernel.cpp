/// Google-benchmark microbenchmarks of the simulation kernel hot paths:
/// event queue churn, spatial-grid contact scans, ChitChat weight updates,
/// and the incentive/DRM formulas. These bound the cost of a paper-scale
/// run (500 nodes x 24 h) and guard against regressions.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "core/incentive.h"
#include "core/incentive_router.h"
#include "core/reputation.h"
#include "mobility/random_waypoint.h"
#include "msg/buffer.h"
#include "net/spatial_grid.h"
#include "obs/event_fanout.h"
#include "obs/trace_sink.h"
#include "stats/metrics.h"
#include "routing/chitchat/interest_table.h"
#include "routing/host.h"
#include "routing/oracle.h"
#include "scenario/scenario.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace {

using namespace dtnic;

void BM_RngUniform(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      (void)q.push(util::SimTime::seconds(rng.uniform(0.0, 1000.0)), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().time);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

/// Cancel-heavy queue usage (timeouts that almost never fire): most pushed
/// events are cancelled before popping. Exercises the drain/compaction path
/// that keeps cancel bookkeeping bounded by live events.
void BM_EventQueueCancelChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(9);
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids.push_back(q.push(util::SimTime::seconds(rng.uniform(0.0, 1000.0)), [] {}));
      // Cancel a random earlier event ~15/16 of the time, mimicking
      // timeout-style events that are rescheduled before they fire.
      if (!ids.empty() && rng.below(16) != 0) {
        const std::size_t victim = rng.below(ids.size());
        q.cancel(ids[victim]);
        ids[victim] = ids.back();
        ids.pop_back();
      }
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().time);
    }
    benchmark::DoNotOptimize(q.heap_entries());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelChurn)->Arg(1024)->Arg(16384);

/// Shared motion model for the contact-scan kernels: nodes at 100/km²
/// with random velocities, bouncing off the area walls. One step() is
/// one scan tick's worth of movement (pedestrian speeds, 5 s tick).
struct ScanWorld {
  explicit ScanWorld(int nodes, std::uint64_t seed = 3)
      : side(std::sqrt(nodes / 100.0) * 1000.0), pos(nodes), vel(nodes) {
    util::Rng rng(seed);
    for (auto& p : pos) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
    for (auto& v : vel) v = {rng.uniform(-7.5, 7.5), rng.uniform(-7.5, 7.5)};
  }
  void step() {
    for (std::size_t i = 0; i < pos.size(); ++i) {
      double x = pos[i].x + vel[i].x;
      double y = pos[i].y + vel[i].y;
      if (x < 0.0 || x > side) { vel[i].x = -vel[i].x; x = pos[i].x; }
      if (y < 0.0 || y > side) { vel[i].y = -vel[i].y; y = pos[i].y; }
      pos[i] = {x, y};
    }
  }
  double side;
  std::vector<util::Vec2> pos;
  std::vector<util::Vec2> vel;
};

/// The steady-state hot path: nodes already resident in the grid, each scan
/// moves them and re-enumerates pairs into a reused scratch vector.
void BM_SpatialGridScan(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  ScanWorld world(nodes);
  net::SpatialGrid grid(100.0);
  std::vector<std::size_t> slots(world.pos.size());
  for (int i = 0; i < nodes; ++i) {
    slots[static_cast<std::size_t>(i)] =
        grid.insert(util::NodeId(static_cast<util::NodeId::underlying>(i)),
                    world.pos[static_cast<std::size_t>(i)]);
  }
  std::vector<net::SpatialGrid::Pair> pairs;
  for (auto _ : state) {
    world.step();
    for (std::size_t i = 0; i < slots.size(); ++i) grid.update_slot(slots[i], world.pos[i]);
    grid.pairs_within(100.0, pairs);
    benchmark::DoNotOptimize(pairs.data());
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_SpatialGridScan)->Arg(100)->Arg(500)->Arg(2000);

/// The pre-incremental shape (clear + reinsert every tick), kept as the
/// reference point the incremental scan is measured against.
void BM_SpatialGridRebuild(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  ScanWorld world(nodes);
  net::SpatialGrid grid(100.0);
  std::vector<net::SpatialGrid::Pair> pairs;
  for (auto _ : state) {
    world.step();
    grid.clear();
    for (int i = 0; i < nodes; ++i) {
      (void)grid.insert(util::NodeId(static_cast<util::NodeId::underlying>(i)),
                        world.pos[static_cast<std::size_t>(i)]);
    }
    grid.pairs_within(100.0, pairs);
    benchmark::DoNotOptimize(pairs.data());
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_SpatialGridRebuild)->Arg(100)->Arg(500)->Arg(2000);

void BM_RandomWaypointStep(benchmark::State& state) {
  mobility::RandomWaypointParams params;
  params.area = {2236.0, 2236.0};
  mobility::RandomWaypoint model(params, util::Rng(4));
  double t = 0.0;
  for (auto _ : state) {
    t += 5.0;
    benchmark::DoNotOptimize(model.position_at(util::SimTime::seconds(t)));
  }
}
BENCHMARK(BM_RandomWaypointStep);

void BM_InterestTableExchange(benchmark::State& state) {
  const int keywords = static_cast<int>(state.range(0));
  routing::chitchat::ChitChatParams params;
  routing::chitchat::InterestTable a(params);
  routing::chitchat::InterestTable b(params);
  for (int k = 0; k < keywords; ++k) {
    if (k % 2 == 0) a.add_direct(msg::KeywordId(k), util::SimTime::zero());
    else b.add_direct(msg::KeywordId(k), util::SimTime::zero());
  }
  double t = 0.0;
  for (auto _ : state) {
    t += 5.0;
    const auto now = util::SimTime::seconds(t);
    a.decay(now, nullptr);
    b.decay(now, nullptr);
    a.grow_from(b, now, 5.0);
    b.grow_from(a, now, 5.0);
    benchmark::DoNotOptimize(a.size());
  }
}
BENCHMARK(BM_InterestTableExchange)->Arg(20)->Arg(200);

void BM_SoftwareIncentive(benchmark::State& state) {
  core::IncentiveParams params;
  util::Rng rng(5);
  core::SoftwareFactors f;
  f.max_sum_weights = 3.0;
  f.max_size_bytes = 2 << 20;
  for (auto _ : state) {
    f.sum_weights_v = rng.uniform(0.0, 3.0);
    f.size_bytes = 1 + rng.below(2 << 20);
    f.quality = rng.uniform(0.0, 1.0);
    benchmark::DoNotOptimize(core::software_incentive(params, f));
  }
}
BENCHMARK(BM_SoftwareIncentive);

void BM_RatingStoreMerge(benchmark::State& state) {
  core::DrmParams drm;
  core::RatingStore store(drm);
  util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    store.add_message_rating(util::NodeId(i), rng.uniform(0.0, 5.0));
  }
  for (auto _ : state) {
    const auto node = util::NodeId(static_cast<util::NodeId::underlying>(rng.below(200)));
    store.merge_remote(node, rng.uniform(0.0, 5.0));
    benchmark::DoNotOptimize(store.rating_of(node));
  }
}
BENCHMARK(BM_RatingStoreMerge);

void BM_RatingStoreSnapshot(benchmark::State& state) {
  core::DrmParams drm;
  core::RatingStore store(drm);
  util::Rng rng(7);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    store.add_message_rating(util::NodeId(i), rng.uniform(0.0, 5.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.snapshot());
  }
}
BENCHMARK(BM_RatingStoreSnapshot)->Arg(50)->Arg(500);

void BM_MessageBufferChurn(benchmark::State& state) {
  const auto policy = state.range(0) == 0 ? msg::DropPolicy::kFifoOldest
                                          : msg::DropPolicy::kLowPriorityFirst;
  util::Rng rng(8);
  constexpr std::uint64_t kMB = 1024 * 1024;
  util::MessageId::underlying next = 0;
  msg::MessageBuffer buf(64 * kMB, policy);
  for (auto _ : state) {
    msg::Message m(util::MessageId(next++), util::NodeId(0), util::SimTime::zero(),
                   kMB / 2 + rng.below(kMB), static_cast<msg::Priority>(rng.range(1, 3)),
                   rng.uniform(0.0, 1.0));
    benchmark::DoNotOptimize(buf.would_admit(m));
    benchmark::DoNotOptimize(buf.add(std::move(m)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageBufferChurn)->Arg(0)->Arg(1);

/// Exchange-pipeline world: a ring of incentive hosts with populated buffers
/// and seeded interest tables. One "contact" is the contact controller's
/// routing work for a link — pre_exchange (decay against neighbors), the
/// link-up weight/reputation exchange, and plan_into in both directions —
/// without the transfer layer, so the measured cost is exactly the routing
/// hot path the strength cache and scratch reuse optimize.
struct ExchangeWorld {
  ExchangeWorld(int nodes, int msgs_per_node, int keywords, std::uint64_t seed = 11) {
    util::Rng rng(seed);
    pool.reserve(static_cast<std::size_t>(keywords));
    for (int k = 0; k < keywords; ++k) {
      pool.push_back(msg::KeywordId(static_cast<util::KeywordId::underlying>(k)));
    }
    world.keyword_pool = &pool;
    world.neighbors = [this](routing::NodeId id, std::vector<routing::Host*>& out) {
      out.clear();
      const std::size_t n = hosts.size();
      const std::size_t i = id.value();
      out.push_back(hosts[(i + 1) % n].get());
      out.push_back(hosts[(i + n - 1) % n].get());
    };

    routing::chitchat::ChitChatParams chitchat;
    constexpr std::uint64_t kMB = 1024 * 1024;
    const auto t0 = util::SimTime::zero();
    util::MessageId::underlying next_id = 0;
    for (int i = 0; i < nodes; ++i) {
      const routing::NodeId id(static_cast<util::NodeId::underlying>(i));
      auto host = std::make_unique<routing::Host>(id, 256 * kMB);
      std::vector<msg::KeywordId> interests;
      for (int j = 0; j < 3; ++j) interests.push_back(pool[rng.below(pool.size())]);
      oracle.set_interests(id, interests);
      auto router = std::make_unique<core::IncentiveRouter>(
          oracle, chitchat, util::SimTime::seconds(5.0), &world, core::BehaviorProfile{},
          rng.fork(static_cast<std::uint64_t>(i)));
      router->set_direct_interests(interests, t0);
      host->set_router(std::move(router));
      for (int m = 0; m < msgs_per_node; ++m) {
        msg::Message msg(util::MessageId(next_id++), id, t0, kMB / 4 + rng.below(kMB / 4),
                         static_cast<msg::Priority>(rng.range(1, 3)), rng.uniform(0.0, 1.0));
        for (int a = 0; a < 3; ++a) {
          (void)msg.annotate(msg::Annotation{pool[rng.below(pool.size())], id, true});
        }
        (void)host->buffer().add(std::move(msg));
      }
      hosts.push_back(std::move(host));
    }
  }

  /// Run the routing work of one contact between hosts \p ai and \p bi at
  /// \p now_s; returns the number of forward plans produced (both ways).
  std::size_t contact(std::size_t ai, std::size_t bi, double now_s,
                      std::vector<routing::ForwardPlan>& plans) {
    routing::Host& a = *hosts[ai];
    routing::Host& b = *hosts[bi];
    const auto now = util::SimTime::seconds(now_s);
    a.router().pre_exchange(a, now, {});
    b.router().pre_exchange(b, now, {});
    a.router().on_link_up(a, b, now, 50.0);
    b.router().on_link_up(b, a, now, 50.0);
    std::size_t produced = 0;
    a.router().plan_into(a, b, now, plans);
    produced += plans.size();
    b.router().plan_into(b, a, now, plans);
    produced += plans.size();
    a.router().on_link_down(a, b, now);
    b.router().on_link_down(b, a, now);
    return produced;
  }

  routing::StaticInterestOracle oracle;
  core::IncentiveWorld world;
  std::vector<msg::KeywordId> pool;
  std::vector<std::unique_ptr<routing::Host>> hosts;
};

void BM_RoutingExchangePlan(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  ExchangeWorld world(nodes, /*msgs_per_node=*/32, /*keywords=*/64);
  std::vector<routing::ForwardPlan> plans;
  double t = 0.0;
  std::size_t pair = 0;
  for (auto _ : state) {
    t += 5.0;
    const std::size_t a = pair % world.hosts.size();
    const std::size_t b = (pair + 1) % world.hosts.size();
    ++pair;
    benchmark::DoNotOptimize(world.contact(a, b, t, plans));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingExchangePlan)->Arg(16)->Arg(64);

/// Repeated interest-strength queries over a stable table: the memoized
/// ChitChatRouter::message_strength against a from-scratch sum_weights per
/// query (the shape PRoPHET/NECTAR/promise computation used to pay).
void BM_MessageStrengthQuery(benchmark::State& state) {
  const bool memoized = state.range(0) != 0;
  ExchangeWorld world(/*nodes=*/2, /*msgs_per_node=*/64, /*keywords=*/64);
  routing::Host& host = *world.hosts[0];
  auto* router = routing::ChitChatRouter::of(host);
  double sum = 0.0;
  for (auto _ : state) {
    host.buffer().for_each([&](const msg::Message& m) {
      sum += memoized ? router->message_strength(m)
                      : router->interests().sum_weights(m.keywords());
    });
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MessageStrengthQuery)->Arg(0)->Arg(1);

void BM_ScenarioMinute(benchmark::State& state) {
  // End-to-end cost of one simulated minute of a 40-node incentive world
  // (builds once; repeatedly extends the horizon).
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(40, 1.0);
  cfg.messages_per_node_per_hour = 1.0;
  cfg.seed = 3;
  for (auto _ : state) {
    state.PauseTiming();
    scenario::Scenario sim(cfg);
    state.ResumeTiming();
    (void)sim.run();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.sim_hours * 60));
  state.SetLabel("simulated-minutes/iter=60");
}
BENCHMARK(BM_ScenarioMinute)->Unit(benchmark::kMillisecond)->Iterations(3);

/// Event fan-out dispatch cost per sink count. Arg(0) is the empty-hub case
/// every Host pays when no observer is attached — the number the "<2%
/// no-sink overhead" acceptance bound rests on; Arg(1)/Arg(4) add
/// MetricsCollector sinks (pure counter updates, no I/O).
void BM_EventFanoutDispatch(benchmark::State& state) {
  const int sinks = static_cast<int>(state.range(0));
  obs::EventFanout fanout;
  std::vector<std::unique_ptr<stats::MetricsCollector>> collectors;
  std::vector<obs::SinkHandle> handles;
  for (int i = 0; i < sinks; ++i) {
    collectors.push_back(std::make_unique<stats::MetricsCollector>());
    handles.push_back(fanout.add_sink(*collectors.back()));
  }
  const msg::Message m(util::MessageId(0), util::NodeId(0), util::SimTime::zero(),
                       1024, msg::Priority::kMedium, 0.5);
  for (auto _ : state) {
    fanout.on_transfer_started(util::NodeId(0), util::NodeId(1), m,
                               routing::TransferRole::kRelay);
    fanout.on_relayed(util::NodeId(0), util::NodeId(1), m);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EventFanoutDispatch)->Arg(0)->Arg(1)->Arg(4);

/// Hand-timed run of one contact-scan kernel for the machine-readable
/// summary: returns ns per scan and the pair count of the last scan.
struct KernelSample {
  double ns_per_scan = 0.0;
  std::size_t pairs = 0;
};

KernelSample time_scan_kernel(bool incremental, int nodes, int iterations) {
  ScanWorld world(nodes);
  net::SpatialGrid grid(100.0);
  std::vector<std::size_t> slots;
  if (incremental) {
    slots.resize(world.pos.size());
    for (int i = 0; i < nodes; ++i) {
      slots[static_cast<std::size_t>(i)] =
          grid.insert(util::NodeId(static_cast<util::NodeId::underlying>(i)),
                      world.pos[static_cast<std::size_t>(i)]);
    }
  }
  std::vector<net::SpatialGrid::Pair> pairs;
  // The reported statistic is the *minimum* per-chunk mean over several
  // contiguous chunks of iterations, not the mean of one long window: on a
  // shared host, any chunk that overlaps a preemption or a frequency dip is
  // inflated by scheduler noise, while the fastest chunk is the closest
  // observable estimate of the kernel's own cost (the same reasoning behind
  // google-benchmark's repetition minimum). The workload is identical every
  // iteration modulo the random walk, so chunk means are comparable.
  constexpr int kChunks = 10;
  const int chunk_iters = std::max(1, iterations / kChunks);
  double best_chunk_ns = std::numeric_limits<double>::infinity();
  int done = 0;
  while (done < iterations) {
    const int todo = std::min(chunk_iters, iterations - done);
    const auto start = std::chrono::steady_clock::now();
    for (int it = 0; it < todo; ++it) {
      world.step();
      if (incremental) {
        for (std::size_t i = 0; i < slots.size(); ++i) grid.update_slot(slots[i], world.pos[i]);
      } else {
        grid.clear();
        for (int i = 0; i < nodes; ++i) {
          (void)grid.insert(util::NodeId(static_cast<util::NodeId::underlying>(i)),
                            world.pos[static_cast<std::size_t>(i)]);
        }
      }
      grid.pairs_within(100.0, pairs);
      benchmark::DoNotOptimize(pairs.data());
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double chunk_ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
        static_cast<double>(todo);
    best_chunk_ns = std::min(best_chunk_ns, chunk_ns);
    done += todo;
  }
  KernelSample sample;
  sample.ns_per_scan = best_chunk_ns;
  sample.pairs = pairs.size();
  return sample;
}

/// Emit BENCH_contact_scan.json: a machine-readable summary of the contact
/// scan kernels for CI (bench-smoke) and regression tracking. Controlled by
/// DTNIC_BENCH_JSON (output path; default alongside the binary) and
/// DTNIC_BENCH_JSON_FAST (any value: fewer iterations, smoke-test scale).
void write_contact_scan_json() {
  const char* path_env = std::getenv("DTNIC_BENCH_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_contact_scan.json";
  const bool fast = std::getenv("DTNIC_BENCH_JSON_FAST") != nullptr;

  struct Case {
    const char* kernel;
    bool incremental;
    int nodes;
  };
  constexpr Case kCases[] = {
      {"scan_incremental", true, 100},  {"scan_incremental", true, 500},
      {"scan_incremental", true, 2000}, {"scan_rebuild", false, 100},
      {"scan_rebuild", false, 500},     {"scan_rebuild", false, 2000},
  };

  std::ofstream os(path);
  if (!os) {
    std::cerr << "micro_kernel: cannot write " << path << "\n";
    return;
  }
  os << "{\n  \"schema\": \"dtnic.contact_scan_bench.v1\",\n  \"results\": [\n";
  bool first = true;
  auto row = [&](const std::string& kernel, int nodes, int iterations,
                 const KernelSample& sample) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"kernel\": \"" << kernel << "\", \"nodes\": " << nodes
       << ", \"iterations\": " << iterations << ", \"ns_per_scan\": " << sample.ns_per_scan
       << ", \"pairs\": " << sample.pairs << "}";
  };
  for (const Case& c : kCases) {
    const int iterations = fast ? 20 : (c.nodes >= 2000 ? 500 : 2000);
    row(c.kernel, c.nodes, iterations, time_scan_kernel(c.incremental, c.nodes, iterations));
  }
  // Per-variant rows for the moving scan at paper scale. Only variants the
  // host CPU supports appear, so regression comparison must intersect rows
  // on (kernel, nodes) rather than expect a fixed set.
  const auto saved_variant = net::SpatialGrid::scan_variant();
  for (const auto v : net::SpatialGrid::supported_scan_variants()) {
    (void)net::SpatialGrid::set_scan_variant(v);
    const int iterations = fast ? 20 : 500;
    row(std::string("scan_incremental_") + net::SpatialGrid::scan_variant_name(v), 2000,
        iterations, time_scan_kernel(true, 2000, iterations));
  }
  (void)net::SpatialGrid::set_scan_variant(saved_variant);
  os << "\n  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

/// Hand-timed event-queue sample: ns per queue operation and the operation
/// count of one iteration.
struct EventQueueSample {
  double ns_per_op = 0.0;
  std::uint64_t ops = 0;
};

/// Fill-then-drain with uniformly random times (the heap's worst case; the
/// wheel pays one bucket sort per distinct tick instead of log n per op).
EventQueueSample time_eventq_push_pop(int events, int iterations) {
  util::Rng rng(2);
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    sim::EventQueue q;
    for (int i = 0; i < events; ++i) {
      (void)q.push(util::SimTime::seconds(rng.uniform(0.0, 1000.0)), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().time);
    }
    ops += 2ull * static_cast<std::uint64_t>(events);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EventQueueSample sample;
  sample.ops = ops / static_cast<std::uint64_t>(iterations);
  sample.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      static_cast<double>(ops);
  return sample;
}

/// Timeout-style usage: ~15/16 of pushed events are cancelled before firing.
EventQueueSample time_eventq_cancel_churn(int events, int iterations) {
  util::Rng rng(9);
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(events));
    for (int i = 0; i < events; ++i) {
      ids.push_back(q.push(util::SimTime::seconds(rng.uniform(0.0, 1000.0)), [] {}));
      ++ops;
      if (!ids.empty() && rng.below(16) != 0) {
        const std::size_t victim = rng.below(ids.size());
        q.cancel(ids[victim]);
        ids[victim] = ids.back();
        ids.pop_back();
        ++ops;
      }
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().time);
      ++ops;
    }
    benchmark::DoNotOptimize(q.heap_entries());
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EventQueueSample sample;
  sample.ops = ops / static_cast<std::uint64_t>(iterations);
  sample.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      static_cast<double>(ops);
  return sample;
}

/// Steady-state simulator shape: a working set of periodic events that
/// re-arm themselves on fire (contact scans, battery drains, samplers). The
/// wheel serves this from the same few slots over and over.
EventQueueSample time_eventq_periodic(int events, int iterations) {
  util::Rng rng(12);
  sim::EventQueue q;
  double t = 0.0;
  for (int i = 0; i < events; ++i) {
    (void)q.push(util::SimTime::seconds(rng.uniform(0.0, 10.0)), [] {});
  }
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    for (int i = 0; i < events; ++i) {
      auto popped = q.pop();
      t = popped.time.sec();
      // Re-arm with the jittered period the scenario layer uses for scans.
      (void)q.push(util::SimTime::seconds(t + 5.0 + rng.uniform(0.0, 0.5)), [] {});
      ops += 2;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EventQueueSample sample;
  sample.ops = ops / static_cast<std::uint64_t>(iterations);
  sample.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      static_cast<double>(ops);
  return sample;
}

/// Emit BENCH_event_queue.json: machine-readable summary of the timing-wheel
/// event queue kernels. Controlled by DTNIC_BENCH_JSON_EVENTQ (output path;
/// default alongside the binary) and DTNIC_BENCH_JSON_FAST (smoke scale).
void write_event_queue_json() {
  const char* path_env = std::getenv("DTNIC_BENCH_JSON_EVENTQ");
  const std::string path = path_env != nullptr ? path_env : "BENCH_event_queue.json";
  const bool fast = std::getenv("DTNIC_BENCH_JSON_FAST") != nullptr;

  std::ofstream os(path);
  if (!os) {
    std::cerr << "micro_kernel: cannot write " << path << "\n";
    return;
  }
  os << "{\n  \"schema\": \"dtnic.event_queue_bench.v1\",\n  \"results\": [\n";
  bool first = true;
  auto row = [&](const char* kernel, int events, int iterations,
                 const EventQueueSample& sample) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"kernel\": \"" << kernel << "\", \"events\": " << events
       << ", \"iterations\": " << iterations << ", \"ns_per_op\": " << sample.ns_per_op
       << ", \"ops\": " << sample.ops << "}";
  };
  for (const int events : {1024, 16384}) {
    const int iterations = fast ? 10 : (events >= 16384 ? 100 : 1000);
    row("push_pop_random", events, iterations, time_eventq_push_pop(events, iterations));
  }
  {
    const int iterations = fast ? 10 : 100;
    row("cancel_churn", 16384, iterations, time_eventq_cancel_churn(16384, iterations));
  }
  {
    const int iterations = fast ? 50 : 5000;
    row("periodic_ticks", 256, iterations, time_eventq_periodic(256, iterations));
  }
  os << "\n  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

/// Hand-timed exchange-pipeline sample: ns per contact (or per strength
/// query) and the plan count of the last contact.
struct ExchangeSample {
  double ns_per_op = 0.0;
  std::size_t plans = 0;
};

ExchangeSample time_exchange_kernel(int nodes, int msgs_per_node, int iterations) {
  ExchangeWorld world(nodes, msgs_per_node, /*keywords=*/64);
  std::vector<routing::ForwardPlan> plans;
  double t = 0.0;
  std::size_t pair = 0;
  std::size_t last = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    t += 5.0;
    const std::size_t a = pair % world.hosts.size();
    const std::size_t b = (pair + 1) % world.hosts.size();
    ++pair;
    last = world.contact(a, b, t, plans);
    benchmark::DoNotOptimize(last);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ExchangeSample sample;
  sample.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      static_cast<double>(iterations);
  sample.plans = last;
  return sample;
}

ExchangeSample time_strength_kernel(bool memoized, int messages, int iterations) {
  ExchangeWorld world(/*nodes=*/2, messages, /*keywords=*/64);
  routing::Host& host = *world.hosts[0];
  auto* router = routing::ChitChatRouter::of(host);
  double sum = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    host.buffer().for_each([&](const msg::Message& m) {
      sum += memoized ? router->message_strength(m)
                      : router->interests().sum_weights(m.keywords());
    });
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  benchmark::DoNotOptimize(sum);
  ExchangeSample sample;
  sample.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      (static_cast<double>(iterations) * static_cast<double>(messages));
  sample.plans = 0;
  return sample;
}

/// Emit BENCH_routing_exchange.json: machine-readable summary of the
/// per-contact exchange/plan pipeline and the strength-query kernels.
/// Controlled by DTNIC_BENCH_JSON_EXCHANGE (output path; default alongside
/// the binary) and DTNIC_BENCH_JSON_FAST (fewer iterations, smoke scale).
void write_routing_exchange_json() {
  const char* path_env = std::getenv("DTNIC_BENCH_JSON_EXCHANGE");
  const std::string path = path_env != nullptr ? path_env : "BENCH_routing_exchange.json";
  const bool fast = std::getenv("DTNIC_BENCH_JSON_FAST") != nullptr;

  std::ofstream os(path);
  if (!os) {
    std::cerr << "micro_kernel: cannot write " << path << "\n";
    return;
  }
  os << "{\n  \"schema\": \"dtnic.routing_exchange_bench.v1\",\n  \"results\": [\n";
  bool first = true;
  auto row = [&](const char* kernel, int nodes, int messages, int iterations,
                 const ExchangeSample& sample) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"kernel\": \"" << kernel << "\", \"nodes\": " << nodes
       << ", \"messages\": " << messages << ", \"iterations\": " << iterations
       << ", \"ns_per_op\": " << sample.ns_per_op << ", \"plans\": " << sample.plans << "}";
  };
  for (const int nodes : {16, 64}) {
    const int iterations = fast ? 20 : 2000;
    row("exchange_contact", nodes, 32, iterations,
        time_exchange_kernel(nodes, 32, iterations));
  }
  for (const bool memoized : {false, true}) {
    const int iterations = fast ? 50 : 20000;
    row(memoized ? "strength_memoized" : "strength_recompute", 2, 64, iterations,
        time_strength_kernel(memoized, 64, iterations));
  }
  os << "\n  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

/// Hand-timed fan-out dispatch: ns per event across sink counts, plus a
/// TraceSink writing to a discarding stream (serialization cost without I/O).
struct ObsSample {
  double ns_per_event = 0.0;
  std::uint64_t events = 0;
};

/// A stream that swallows everything (measures formatting, not the disk).
class NullBuf final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
};

ObsSample time_fanout_kernel(int sinks, int iterations) {
  obs::EventFanout fanout;
  std::vector<std::unique_ptr<stats::MetricsCollector>> collectors;
  std::vector<obs::SinkHandle> handles;
  for (int i = 0; i < sinks; ++i) {
    collectors.push_back(std::make_unique<stats::MetricsCollector>());
    handles.push_back(fanout.add_sink(*collectors.back()));
  }
  const msg::Message m(util::MessageId(0), util::NodeId(0), util::SimTime::zero(),
                       1024, msg::Priority::kMedium, 0.5);
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    fanout.on_transfer_started(util::NodeId(0), util::NodeId(1), m,
                               routing::TransferRole::kRelay);
    fanout.on_relayed(util::NodeId(0), util::NodeId(1), m);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ObsSample sample;
  sample.events = static_cast<std::uint64_t>(iterations) * 2;
  sample.ns_per_event =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      static_cast<double>(sample.events);
  return sample;
}

ObsSample time_trace_null_kernel(int iterations) {
  NullBuf devnull;
  std::ostream os(&devnull);
  obs::TraceOptions opt;
  opt.scheme = "bench";
  obs::TraceSink sink(os, opt);
  obs::EventFanout fanout;
  stats::MetricsCollector metrics;
  auto hm = fanout.add_sink(metrics);
  auto ht = fanout.add_sink(sink);
  const msg::Message m(util::MessageId(0), util::NodeId(0), util::SimTime::zero(),
                       1024, msg::Priority::kMedium, 0.5);
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    fanout.on_transfer_started(util::NodeId(0), util::NodeId(1), m,
                               routing::TransferRole::kRelay);
    fanout.on_relayed(util::NodeId(0), util::NodeId(1), m);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ObsSample sample;
  sample.events = static_cast<std::uint64_t>(iterations) * 2;
  sample.ns_per_event =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      static_cast<double>(sample.events);
  return sample;
}

/// Emit BENCH_observability.json: dispatch cost of the event fan-out per
/// sink count and the JSONL serialization kernel. Controlled by
/// DTNIC_BENCH_JSON_OBS (output path; default alongside the binary) and
/// DTNIC_BENCH_JSON_FAST (fewer iterations, smoke scale).
void write_observability_json() {
  const char* path_env = std::getenv("DTNIC_BENCH_JSON_OBS");
  const std::string path = path_env != nullptr ? path_env : "BENCH_observability.json";
  const bool fast = std::getenv("DTNIC_BENCH_JSON_FAST") != nullptr;

  std::ofstream os(path);
  if (!os) {
    std::cerr << "micro_kernel: cannot write " << path << "\n";
    return;
  }
  os << "{\n  \"schema\": \"dtnic.observability_bench.v1\",\n  \"results\": [\n";
  bool first = true;
  auto row = [&](const char* kernel, int sinks, int iterations, const ObsSample& sample) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"kernel\": \"" << kernel << "\", \"sinks\": " << sinks
       << ", \"iterations\": " << iterations << ", \"ns_per_event\": " << sample.ns_per_event
       << ", \"events\": " << sample.events << "}";
  };
  const int iterations = fast ? 2000 : 2000000;
  for (const int sinks : {0, 1, 4}) {
    row("fanout_dispatch", sinks, iterations, time_fanout_kernel(sinks, iterations));
  }
  const int trace_iterations = fast ? 1000 : 200000;
  row("trace_null_sink", 2, trace_iterations, time_trace_null_kernel(trace_iterations));
  os << "\n  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_contact_scan_json();
  write_event_queue_json();
  write_routing_exchange_json();
  write_observability_json();
  return 0;
}
