#pragma once

#include "msg/message.h"
#include "routing/types.h"

/// \file events.h
/// Observer interface for everything that happens to messages. The stats
/// module implements it to compute MDR, traffic, and the per-figure series;
/// tests implement it to assert on exact event sequences.

namespace dtnic::routing {

class RoutingEvents {
 public:
  virtual ~RoutingEvents() = default;

  /// A new message entered the network at its source.
  virtual void on_created(const msg::Message& m) { (void)m; }

  /// A transfer started (counted as traffic whether or not it completes).
  virtual void on_transfer_started(NodeId from, NodeId to, const msg::Message& m,
                                   TransferRole role) {
    (void)from; (void)to; (void)m; (void)role;
  }

  /// A relay copy arrived at an intermediate node.
  virtual void on_relayed(NodeId from, NodeId to, const msg::Message& m) {
    (void)from; (void)to; (void)m;
  }

  /// A copy arrived at a node with a direct interest. Whether it is the
  /// network-wide first delivery of the message (the MDR numerator event)
  /// is tracked by the metrics collector.
  virtual void on_delivered(NodeId from, NodeId to, const msg::Message& m) {
    (void)from; (void)to; (void)m;
  }

  /// An offer was refused by the peer's admission control.
  virtual void on_refused(NodeId from, NodeId to, const msg::Message& m, AcceptDecision why) {
    (void)from; (void)to; (void)m; (void)why;
  }

  /// A transfer was cut off by link loss.
  virtual void on_aborted(NodeId from, NodeId to, MessageId m) {
    (void)from; (void)to; (void)m;
  }

  /// A buffered copy was discarded.
  virtual void on_dropped(NodeId at, const msg::Message& m, DropReason why) {
    (void)at; (void)m; (void)why;
  }

  /// Incentive tokens moved from \p payer to \p payee (core scheme only).
  virtual void on_tokens_paid(NodeId payer, NodeId payee, double amount) {
    (void)payer; (void)payee; (void)amount;
  }

  /// \p rater revised its first-hand opinion of \p rated after judging a
  /// message (DRM §3.3 case 1); \p rating is the rater's updated effective
  /// rating of \p rated. Second-hand merges during contacts are not
  /// reported — they are O(nodes) per contact and carry no judgement.
  virtual void on_reputation_updated(NodeId rater, NodeId rated, double rating) {
    (void)rater; (void)rated; (void)rating;
  }

  /// A relay added \p tags_added keyword annotations to the carried copy
  /// (content enrichment, §1.3.2). Fired after the tags are applied, so
  /// m.keywords() already includes them. Source-time malicious planting is
  /// not reported here; those tags are visible on the created message.
  virtual void on_enriched(NodeId at, const msg::Message& m, int tags_added) {
    (void)at; (void)m; (void)tags_added;
  }
};

}  // namespace dtnic::routing
