#include "core/reputation.h"

#include <algorithm>

#include "util/assert.h"

namespace dtnic::core {

namespace {

double clamp_rating(double r, const DrmParams& drm) {
  return std::clamp(r, 0.0, drm.rating_max);
}

double with_noise(double r, const DrmParams& drm, util::Rng& rng) {
  if (drm.rating_noise_sd <= 0.0) return clamp_rating(r, drm);
  return clamp_rating(r + rng.normal(0.0, drm.rating_noise_sd), drm);
}

}  // namespace

void RatingStore::add_message_rating(NodeId rated, double rating) {
  DTNIC_REQUIRE(rated.valid());
  DTNIC_REQUIRE_MSG(rating >= 0.0 && rating <= params_.rating_max,
                    "rating outside [0, rating_max]");
  Record& rec = records_[rated];
  rec.first_hand_sum += rating;
  rec.first_hand_count += 1;
  // Case 1: the node rating is the running mean of message ratings.
  rec.value = rec.first_hand_sum / static_cast<double>(rec.first_hand_count);
}

void RatingStore::merge_remote(NodeId rated, double remote_rating) {
  DTNIC_REQUIRE(rated.valid());
  const double remote = std::clamp(remote_rating, 0.0, params_.rating_max);
  auto it = records_.find(rated);
  if (it == records_.end()) {
    Record rec;
    rec.value = remote;  // no prior opinion: adopt the remote view
    records_.emplace(rated, rec);
    return;
  }
  // Case 2: r ← (1−α)·r_remote + α·r_own.
  it->second.value = (1.0 - params_.alpha) * remote + params_.alpha * it->second.value;
}

double RatingStore::rating_of(NodeId node) const {
  auto it = records_.find(node);
  return it != records_.end() ? it->second.value : params_.default_rating;
}

bool RatingStore::trusted(NodeId node) const {
  if (!params_.enabled) return true;
  return rating_of(node) >= params_.trust_threshold;
}

std::vector<std::pair<NodeId, double>> RatingStore::snapshot() const {
  std::vector<std::pair<NodeId, double>> out;
  out.reserve(records_.size());
  for (const auto& [node, rec] : records_) out.emplace_back(node, rec.value);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

double MessageJudgement::truthful_fraction(const msg::Message& m, NodeId annotator) {
  const auto tags = m.annotations_by(annotator);
  if (tags.empty()) return 1.0;
  std::size_t truthful = 0;
  for (const msg::Annotation& a : tags) {
    if (a.truthful) ++truthful;
  }
  return static_cast<double>(truthful) / static_cast<double>(tags.size());
}

double MessageJudgement::rate_source(const msg::Message& m, const DrmParams& drm,
                                     util::Rng& rng) {
  const double r_t = drm.rating_max * truthful_fraction(m, m.source());
  const double r_q = drm.rating_max * m.quality();
  const double r = 0.5 * (r_t * drm.confidence) + 0.5 * r_q;
  return with_noise(r, drm, rng);
}

double MessageJudgement::rate_annotator(const msg::Message& m, NodeId annotator,
                                        const DrmParams& drm, util::Rng& rng) {
  if (m.annotations_by(annotator).empty()) return drm.default_rating;
  const double r_t = drm.rating_max * truthful_fraction(m, annotator);
  return with_noise(r_t * drm.confidence, drm, rng);
}

double award_factor(const DrmParams& drm, const std::vector<msg::PathRating>& path_ratings,
                    double deliverer_rating) {
  const double own = std::clamp(deliverer_rating, 0.0, drm.rating_max) / drm.rating_max;
  if (!drm.enabled) return 1.0;
  if (path_ratings.empty()) return own;
  double sum = 0.0;
  for (const msg::PathRating& r : path_ratings) {
    sum += std::clamp(r.rating, 0.0, drm.rating_max) / drm.rating_max;
  }
  const double path_mean = sum / static_cast<double>(path_ratings.size());
  return (1.0 - drm.alpha) * path_mean + drm.alpha * own;
}

}  // namespace dtnic::core
