#include "util/timing.h"

#include <algorithm>

namespace dtnic::util {

thread_local ScopedTimer* ScopedTimer::current_ = nullptr;

ScopedTimer::ScopedTimer(std::uint64_t& accumulator_ns) noexcept
    : acc_(accumulator_ns), parent_(current_), start_(Clock::now()) {
  current_ = this;
}

ScopedTimer::~ScopedTimer() {
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count());
  acc_ += ns - std::min(ns, excluded_ns_);
  if (parent_ != nullptr) parent_->excluded_ns_ += ns;
  current_ = parent_;
}

}  // namespace dtnic::util
