#pragma once

#include <functional>
#include <unordered_map>

#include "core/behavior.h"
#include "core/enrichment.h"
#include "core/incentive.h"
#include "core/reputation.h"
#include "core/token_ledger.h"
#include "routing/chitchat/chitchat_router.h"

/// \file incentive_router.h
/// The paper's contribution: ChitChat routing with the credit incentive
/// mechanism (§3.2), the distributed reputation model (§3.3), and content
/// enrichment wired into every contact. Per contact:
///
///   link up      ChitChat weight exchange, then reputation exchange
///                (second-hand merge) and contact-distance capture
///   plan         ChitChat destination/relay selection, then per-offer
///                promise I = min(I_s + I_h, I_m) and relay pre-payment
///                terms; offers ordered by priority and quality
///   accept       duplicate check; DRM sender-trust gate; token
///                affordability (a destination that cannot pay the promise
///                refuses — Paper II §3.3)
///   on_received  destination: pay reputation-scaled award
///                I_v = factor · (I + I_t) to the deliverer (first copy
///                only — duplicates never get this far);
///                relay: pay the agreed pre-payment, rate the source and
///                enriching relays (DRM), enrich per behavior profile, store

namespace dtnic::core {

/// Run-wide shared configuration and services for all incentive routers.
struct IncentiveWorld {
  IncentiveParams incentive;
  DrmParams drm;
  net::RadioParams radio;
  /// Keyword universe; malicious enrichment samples from it.
  const std::vector<msg::KeywordId>* keyword_pool = nullptr;
  /// Current neighbors of a node (used for w_m in Algorithm 3); provided by
  /// the scenario from the connectivity manager. Fill-style so the per-plan
  /// query reuses a caller-owned scratch vector instead of allocating.
  std::function<void(routing::NodeId, std::vector<routing::Host*>&)> neighbors;
  /// Host lookup by id (PI-style escrow clearing credits path relays).
  std::function<routing::Host*(routing::NodeId)> host_by_id;
  /// Master switch for content enrichment (ablation benches flip it).
  bool enrichment_enabled = true;
};

class IncentiveRouter final : public routing::ChitChatRouter {
 public:
  IncentiveRouter(const routing::DestinationOracle& oracle,
                  const routing::chitchat::ChitChatParams& chitchat,
                  util::SimTime contact_quantum, const IncentiveWorld* world,
                  BehaviorProfile profile, util::Rng rng);

  [[nodiscard]] TokenLedger& ledger() { return ledger_; }
  [[nodiscard]] const TokenLedger& ledger() const { return ledger_; }
  [[nodiscard]] RatingStore& ratings() { return ratings_; }
  [[nodiscard]] const RatingStore& ratings() const { return ratings_; }
  [[nodiscard]] const BehaviorProfile& behavior() const { return profile_; }

  [[nodiscard]] static IncentiveRouter* of(routing::Host& host);

  void on_link_up(routing::Host& self, routing::Host& peer, util::SimTime now,
                  double distance_m) override;
  void on_link_down(routing::Host& self, routing::Host& peer, util::SimTime now) override;
  void plan_for_peer(routing::Host& self, const routing::Peer& peer, util::SimTime now,
                     std::vector<routing::ForwardPlan>& out) override;
  [[nodiscard]] routing::AcceptDecision accept(routing::Host& self, const routing::Peer& from,
                                               const msg::Message& m,
                                               const routing::ForwardPlan& offer,
                                               util::SimTime now) override;
  void on_received(routing::Host& self, routing::Host& from, msg::Message m,
                   const routing::ForwardPlan& plan, util::SimTime now) override;

  /// The promise the sender \p self would attach when forwarding \p m to
  /// \p peer right now (public for tests and the operator facade). The peer
  /// is transport-neutral: strength, rank, and id are all the formula needs.
  [[nodiscard]] double compute_promise(routing::Host& self, const routing::Peer& peer,
                                       const msg::Message& m);

 private:
  /// Per-plan() precomputed context: the sender's connected neighbors and
  /// its buffer-wide maxima (S_m, Q_m of Table 3.1); hoisted so promise
  /// computation is O(keywords) per message instead of O(buffer).
  struct PromiseContext {
    std::vector<routing::Host*> neighbors;
    std::uint64_t max_size_bytes = 1;
    double max_quality = 1e-9;
  };
  void fill_promise_context(routing::Host& self, PromiseContext& ctx) const;
  [[nodiscard]] double promise_for(routing::Host& self, const routing::Peer& peer,
                                   const msg::Message& m, const PromiseContext& ctx);

  /// Plan entry with its sort keys resolved once; the sort comparator
  /// compares plain fields instead of doing two buffer hash lookups per
  /// call. `seq` is the pre-sort position: using it as the final tiebreak
  /// makes plain std::sort stable without stable_sort's temporary buffer.
  struct KeyedPlan {
    routing::ForwardPlan plan;
    int priority = 0;
    double quality = 0.0;
    std::uint32_t seq = 0;
  };

  /// DRM judgement of a freshly received copy: rate the source and every
  /// enriching relay, record first-hand, and stamp path ratings on the copy.
  void rate_and_record(routing::Host& self, msg::Message& m);

  const IncentiveWorld* world_;
  BehaviorProfile profile_;
  util::Rng rng_;
  TokenLedger ledger_;
  RatingStore ratings_;
  Enricher enricher_;
  /// Distance to each currently connected peer; inserted on link-up, erased
  /// on link-down — per-contact node churn, so arena-pooled.
  util::arena::PooledMap<routing::NodeId, double> contact_distance_;
  /// plan_into scratch (reused across contacts; steady-state allocation-free).
  /// THREADING: member scratch makes plan_into non-reentrant per router; the
  /// staged exchange guarantees exclusion by locking this node's host mutex
  /// for the duration of any plan task whose lock set contains it. The
  /// promise path additionally reads neighbor routers' strength caches,
  /// which is why a link's lock set includes both endpoints' neighborhoods.
  PromiseContext promise_ctx_;
  std::vector<KeyedPlan> keyed_scratch_;
};

}  // namespace dtnic::core
