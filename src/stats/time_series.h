#pragma once

#include <vector>

#include "util/sim_time.h"

/// \file time_series.h
/// A sampled (time, value) series — e.g. Fig. 5.4's "average rating of
/// malicious nodes over time". Samples are appended in time order by the
/// scenario's periodic sampler.
///
/// The series is a step function that starts at a configurable initial
/// value: queries before the first sample (or on an empty series) report
/// that initial value, NOT the first observed sample. Malicious-rating
/// series start at the rating-scale default, so averaging runs with
/// staggered sample grids does not smear the first observation backwards.

namespace dtnic::stats {

struct Sample {
  util::SimTime time;
  double value = 0.0;
};

class TimeSeries {
 public:
  TimeSeries() = default;
  /// \p initial_value is the step value before the first sample.
  explicit TimeSeries(double initial_value) : initial_(initial_value) {}

  void set_initial_value(double v) { initial_ = v; }
  [[nodiscard]] double initial_value() const { return initial_; }

  void add(util::SimTime t, double value) { samples_.push_back({t, value}); }

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  [[nodiscard]] double last_value() const {
    return samples_.empty() ? initial_ : samples_.back().value;
  }
  [[nodiscard]] double first_value() const {
    return samples_.empty() ? initial_ : samples_.front().value;
  }

  /// Value of the most recent sample at or before \p t; the initial value
  /// if \p t precedes all samples (or the series is empty).
  [[nodiscard]] double value_at(util::SimTime t) const;

 private:
  std::vector<Sample> samples_;
  double initial_ = 0.0;
};

}  // namespace dtnic::stats
