#pragma once

#include <cstdint>
#include <string>

#include "core/incentive.h"
#include "core/pi_router.h"
#include "core/reputation.h"
#include "net/radio.h"
#include "routing/chitchat/interest_table.h"
#include "routing/nectar.h"
#include "routing/prophet.h"
#include "util/sim_time.h"

/// \file config.h
/// One struct describes a complete simulation scenario. paper_defaults()
/// reproduces Table 5.1; scaled_defaults() is a density-preserving shrink
/// (fewer nodes in a smaller area, shorter horizon) that the benchmark
/// harness uses so a full figure sweep completes in minutes on one core.

namespace dtnic::scenario {

/// Routing scheme under test.
enum class Scheme {
  kIncentive,     ///< the paper's contribution: ChitChat + incentives + DRM
  kPiIncentive,   ///< PI-style source-pays alternative (thesis §2.1 survey)
  kChitChat,      ///< plain ChitChat (the paper's comparison baseline)
  kEpidemic,
  kDirectDelivery,
  kSprayAndWait,
  kFirstContact,
  kVaccineEpidemic,  ///< epidemic + antipackets (immunity-based variant)
  kProphet,       ///< data-centric PRoPHET adaptation
  kNectar,        ///< meeting-frequency neighborhood index (thesis §1.1)
  kTwoHop,        ///< two-hop relay (thesis §1.1)
};

[[nodiscard]] const char* scheme_name(Scheme s);

/// Node movement model.
enum class MobilityKind {
  kRandomWaypoint,  ///< Table 5.1 / the paper's evaluation
  kRandomWalk,
  kHotspot,         ///< points-of-interest clustering (ablation)
};

[[nodiscard]] const char* mobility_name(MobilityKind k);

struct ScenarioConfig {
  // --- Table 5.1 -----------------------------------------------------------
  std::size_t num_nodes = 500;           ///< Number of Participants
  std::size_t keyword_pool_size = 200;   ///< Pool of Social Interest Keywords
  std::size_t interests_per_node = 20;   ///< No of Defined Social Interests
  net::RadioParams radio{};              ///< 250 kBps, 100 m
  std::uint64_t buffer_capacity_bytes = 250ull * 1024 * 1024;  ///< 250 MB
  std::uint64_t message_size_bytes = 1ull * 1024 * 1024;       ///< 1 MB
  double area_side_m = 2236.0;           ///< ~5 km² square
  double sim_hours = 24.0;               ///< Simulated time
  // relay threshold + initial tokens live in `incentive`

  // --- scheme & algorithm parameters --------------------------------------
  Scheme scheme = Scheme::kIncentive;
  routing::chitchat::ChitChatParams chitchat{};
  core::IncentiveParams incentive{};
  core::DrmParams drm{};
  bool enrichment_enabled = true;
  int spray_copies = 8;  ///< L for the Spray-and-Wait baseline
  core::PiParams pi{};  ///< source-pays alternative's knobs
  routing::ProphetParams prophet{};
  routing::NectarParams nectar{};

  // --- behavior population -------------------------------------------------
  double selfish_fraction = 0.0;    ///< swept in Figs. 5.1–5.3, 5.6
  double malicious_fraction = 0.0;  ///< swept in Fig. 5.4
  /// Fraction of nodes that economize once their battery runs low (the
  /// endogenous-selfishness extension; ablation_battery exercises it).
  double battery_conscious_fraction = 0.0;
  double battery_capacity_j = 20'000.0;  ///< per-node battery
  double battery_threshold = 0.3;        ///< level below which they economize
  double battery_participation = 0.2;    ///< encounter gate when economizing
  double selfish_participation = 0.1;  ///< radio open 1-in-10 encounters
  double enrich_probability = 0.3;     ///< honest relay enrichment chance
  int honest_max_tags = 2;
  int malicious_tags = 3;
  /// Fraction of nodes with role rank 1 ("sergeants"); the rest are rank 2.
  /// Feeds Algorithm 3's R_u < R_v special case.
  double officer_fraction = 0.1;

  // --- workload -------------------------------------------------------------
  /// Mean message creations per node per hour (exponential interarrival).
  double messages_per_node_per_hour = 0.25;
  /// Keywords the source itself tags on a new message.
  int keywords_per_message = 3;
  /// Additional latent-truth keywords the source does NOT tag — facts about
  /// the content only en-route relays can contribute (§1.3.2: "happen to
  /// have supplementary information about the content"). Honest enrichment
  /// draws from these; 0 disables the enrichment headroom.
  int latent_extra_keywords = 2;
  /// Message TTL; <= 0 means unlimited (the paper does not expire messages).
  double ttl_hours = 0.0;
  /// Fig. 5.6 workload: 50% of sources emit high-priority/high-quality
  /// large messages, 30% medium, 20% low. Otherwise all messages are
  /// medium priority with quality uniform in [0.5, 1].
  bool priority_workload = false;

  // --- mobility & kernel ----------------------------------------------------
  /// When non-empty, contacts are replayed from this trace file (one
  /// `up_s down_s node_a node_b [distance_m]` event per line) instead of
  /// being detected from mobility; see net/scripted_contacts.h.
  std::string contact_trace_file;
  MobilityKind mobility = MobilityKind::kRandomWaypoint;
  double min_speed_mps = 0.5;
  double max_speed_mps = 1.5;
  double max_pause_s = 120.0;
  std::size_t hotspot_count = 5;       ///< kHotspot: shared attraction points
  double hotspot_radius_m = 150.0;
  double hotspot_probability = 0.8;
  double scan_interval_s = 5.0;     ///< connectivity scan period
  double ttl_sweep_interval_s = 600.0;
  double sample_interval_s = 1800.0;  ///< metric time-series sampling

  /// Intra-run shard threads for the contact scan (see DESIGN.md "Intra-run
  /// sharding"). 1 = fully serial; 0 = one shard per hardware thread. Output
  /// is bit-identical for every value, so this is purely a speed knob.
  std::size_t shard_threads = 1;

  /// Intra-tick threads for the routing/exchange phase (see DESIGN.md
  /// "Parallel exchange phase"). 1 = the serial pump; >1 plans all connected
  /// pairs in parallel and commits serially; 0 = one thread per hardware
  /// thread. Output is bit-identical for every value, so this is purely a
  /// speed knob, like shard_threads.
  std::size_t exchange_threads = 1;

  std::uint64_t seed = 1;

  /// Validate invariants; throws std::invalid_argument on nonsense.
  void validate() const;

  /// Table 5.1 exactly.
  [[nodiscard]] static ScenarioConfig paper_defaults();

  /// Density-preserving shrink: \p nodes participants in an area scaled so
  /// nodes-per-km² matches Table 5.1, over \p hours simulated hours.
  [[nodiscard]] static ScenarioConfig scaled_defaults(std::size_t nodes = 150,
                                                      double hours = 6.0);
};

}  // namespace dtnic::scenario
