#include "routing/router.h"

namespace dtnic::routing {

AcceptDecision Router::accept(Host& self, const Peer& from, const msg::Message& m,
                              const ForwardPlan& offer, util::SimTime now) {
  (void)from; (void)offer; (void)now;
  if (self.has_seen(m.id())) return AcceptDecision::kDuplicate;
  return AcceptDecision::kAccept;
}

void Router::on_received(Host& self, Host& from, msg::Message m, const ForwardPlan& plan,
                         util::SimTime now) {
  (void)from; (void)plan; (void)now;
  self.mark_seen(m.id());
  store(self, std::move(m), /*own=*/false);
}

bool Router::store(Host& self, msg::Message m, bool own) const {
  auto outcome = self.buffer().add(std::move(m), own);
  for (const msg::Message& evicted : outcome.evicted) {
    self.events().on_dropped(self.id(), evicted, DropReason::kBufferFull);
  }
  return outcome.result == msg::MessageBuffer::AddResult::kAdded;
}

}  // namespace dtnic::routing
