#pragma once

#include <sstream>
#include <string>

/// \file logging.h
/// Leveled logging to stderr. Each simulator instance is single-threaded,
/// but the experiment runner executes instances on thread-pool workers, so
/// the process-wide level is stored atomically. Default is Warn so that
/// benchmarks stay quiet; override via the DTNIC_LOG environment variable
/// ("trace" | "debug" | "info" | "warn" | "error" | "off").

namespace dtnic::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded.
[[nodiscard]] LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse a level name; returns kWarn for unknown names.
[[nodiscard]] LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_write(LogLevel level, const char* component, const std::string& message);
}

/// Stream-style log statement collector; emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* component) : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { detail::log_write(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

}  // namespace dtnic::util

#define DTNIC_LOG(level, component)                              \
  if (::dtnic::util::log_level() <= (level))                     \
  ::dtnic::util::LogLine((level), (component))

#define DTNIC_TRACE(component) DTNIC_LOG(::dtnic::util::LogLevel::kTrace, component)
#define DTNIC_DEBUG(component) DTNIC_LOG(::dtnic::util::LogLevel::kDebug, component)
#define DTNIC_INFO(component) DTNIC_LOG(::dtnic::util::LogLevel::kInfo, component)
#define DTNIC_WARN(component) DTNIC_LOG(::dtnic::util::LogLevel::kWarn, component)
#define DTNIC_ERROR(component) DTNIC_LOG(::dtnic::util::LogLevel::kError, component)
