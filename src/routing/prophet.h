#pragma once

#include <unordered_map>

#include "routing/router.h"

/// \file prophet.h
/// PRoPHET (Lindgren et al., probabilistic routing using history of
/// encounters and transitivity), adapted to data-centric addressing: the
/// delivery predictability P(node, keyword) estimates how likely this node
/// is to reach a subscriber of `keyword`.
///   * direct update on meeting a subscriber:  P += (1-P)·P_init
///   * aging:                                  P ·= γ^(Δt/τ)
///   * transitivity via the encountered peer:  P = max(P, P_peer·β·P_init)
/// A message is handed to the peer when the peer's best predictability over
/// the message's keywords exceeds the sender's.

namespace dtnic::routing {

struct ProphetParams {
  double p_init = 0.75;
  double gamma = 0.98;
  double beta = 0.25;
  double aging_unit_s = 30.0;  ///< ONE's default time unit for aging
  double prune_epsilon = 1e-4;
};

class ProphetRouter : public Router {
 public:
  ProphetRouter(const DestinationOracle& oracle, const ProphetParams& params);

  void on_link_up(Host& self, Host& peer, util::SimTime now, double distance_m) override;
  [[nodiscard]] std::vector<ForwardPlan> plan(Host& self, Host& peer,
                                              util::SimTime now) override;

  /// Best predictability over the message's keywords (0 if none known).
  [[nodiscard]] double predictability_for(const msg::Message& m) const;
  [[nodiscard]] double predictability(msg::KeywordId k) const;

  [[nodiscard]] static ProphetRouter* of(Host& host);

 private:
  void age(util::SimTime now);

  ProphetParams params_;
  std::unordered_map<msg::KeywordId, double> table_;
  double last_aged_s_ = 0.0;
};

}  // namespace dtnic::routing
