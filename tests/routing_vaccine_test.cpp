#include <gtest/gtest.h>

#include "routing/vaccine_epidemic.h"
#include "scenario/experiment.h"
#include "test_helpers.h"

namespace dtnic::routing {
namespace {

using test::MicroWorld;
using util::SimTime;

constexpr auto kT0 = SimTime::zero();

class VaccineFixture : public ::testing::Test {
 protected:
  VaccineFixture() : factory(w.keywords) {}

  Host& make_node(const std::vector<std::string>& interests = {}) {
    Host& h = w.add_host();
    h.set_router(std::make_unique<VaccineEpidemicRouter>(w.oracle));
    std::vector<msg::KeywordId> kws;
    for (const auto& name : interests) kws.push_back(w.keywords.intern(name));
    w.oracle.set_interests(h.id(), kws);
    return h;
  }

  msg::MessageId seed(Host& src, const std::vector<std::string>& tags) {
    auto m = factory.make(src.id(), tags);
    const auto id = m.id();
    src.mark_seen(id);
    (void)src.buffer().add(std::move(m), true);
    return id;
  }

  MicroWorld w;
  test::MessageFactory factory;
};

TEST_F(VaccineFixture, DeliveryImmunizesAndDropsTheCopy) {
  Host& src = make_node();
  Host& dest = make_node({"flood"});
  const auto id = seed(src, {"flood"});
  w.link_up(src, dest, kT0);
  EXPECT_EQ(w.exchange(src, dest, kT0), 1);
  auto* router = VaccineEpidemicRouter::of(dest);
  ASSERT_NE(router, nullptr);
  EXPECT_TRUE(router->immune_to(id));
  EXPECT_FALSE(dest.buffer().contains(id));  // antipacket replaces the copy
  EXPECT_EQ(w.events.deliveries.size(), 1u);
}

TEST_F(VaccineFixture, AntipacketSpreadsAndPurges) {
  Host& src = make_node();
  Host& carrier = make_node();
  Host& dest = make_node({"flood"});
  const auto id = seed(src, {"flood"});

  // Spread the copy to a carrier, then deliver from src to the destination.
  w.link_up(src, carrier, kT0);
  EXPECT_EQ(w.exchange(src, carrier, kT0), 1);
  ASSERT_TRUE(carrier.buffer().contains(id));
  w.link_up(src, dest, kT0);
  EXPECT_EQ(w.exchange(src, dest, kT0), 1);

  // dest gossips its immunity to the carrier, which purges its copy.
  w.link_up(carrier, dest, SimTime::seconds(10));
  EXPECT_FALSE(carrier.buffer().contains(id));
  EXPECT_TRUE(VaccineEpidemicRouter::of(carrier)->immune_to(id));

  // ...and the carrier now refuses fresh copies and never re-offers.
  EXPECT_TRUE(carrier.router().plan(carrier, dest, SimTime::seconds(10)).empty());
  const ForwardPlan offer{id, TransferRole::kRelay};
  EXPECT_EQ(carrier.router().accept(carrier, src, *src.buffer().find(id), offer,
                                    SimTime::seconds(10)),
            AcceptDecision::kRefused);
}

TEST_F(VaccineFixture, ImmunePeerIsNotOffered) {
  Host& src = make_node();
  Host& dest = make_node({"flood"});
  Host& other = make_node();
  const auto id = seed(src, {"flood"});
  w.link_up(src, dest, kT0);
  (void)w.exchange(src, dest, kT0);
  // src itself is not immune (it still carries the copy for other
  // destinations), but it must not offer the message to the immune dest.
  (void)id;
  w.link_up(src, other, SimTime::seconds(5));
  EXPECT_EQ(src.router().plan(src, other, SimTime::seconds(5)).size(), 1u);
  EXPECT_TRUE(src.router().plan(src, dest, SimTime::seconds(5)).empty());
}

TEST(VaccineScenario, CutsTrafficVersusPlainEpidemic) {
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(50, 2.0);
  cfg.seed = 9;
  cfg.messages_per_node_per_hour = 1.0;
  cfg.scheme = scenario::Scheme::kEpidemic;
  const auto plain = scenario::ExperimentRunner::run_once(cfg);
  cfg.scheme = scenario::Scheme::kVaccineEpidemic;
  const auto vaccine = scenario::ExperimentRunner::run_once(cfg);
  EXPECT_LT(vaccine.traffic, plain.traffic);
  EXPECT_GT(vaccine.delivered, 0u);
  EXPECT_EQ(vaccine.scheme, "vaccine-epidemic");
}

}  // namespace
}  // namespace dtnic::routing
