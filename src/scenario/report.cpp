#include "scenario/report.h"

#include <algorithm>
#include <unordered_map>

#include "util/summary.h"

namespace dtnic::scenario {

void write_run_report(std::ostream& os, const RunResult& result) {
  util::Table table({"metric", "value"});
  auto row = [&table](const std::string& name, const std::string& value) {
    table.add_row({name, value});
  };
  row("scheme", result.scheme);
  row("seed", std::to_string(result.seed));
  row("created", util::Table::cell(result.created));
  row("delivered (unique)", util::Table::cell(result.delivered));
  row("MDR", util::Table::cell(result.mdr, 4));
  row("deliveries total", util::Table::cell(static_cast<std::size_t>(result.deliveries_total)));
  row("mean hops", util::Table::cell(result.mean_hops, 2));
  row("mean latency (s)", util::Table::cell(result.mean_latency_s, 1));
  row("traffic (transfers started)", util::Table::cell(static_cast<std::size_t>(result.traffic)));
  row("contacts", util::Table::cell(static_cast<std::size_t>(result.contacts)));
  row("contacts suppressed", util::Table::cell(static_cast<std::size_t>(result.contacts_suppressed)));
  row("MDR high / medium / low",
      util::Table::cell(result.mdr_high, 3) + " / " + util::Table::cell(result.mdr_medium, 3) +
          " / " + util::Table::cell(result.mdr_low, 3));
  row("tokens paid", util::Table::cell(result.tokens_paid, 1));
  row("payments", util::Table::cell(static_cast<std::size_t>(result.payments)));
  row("avg final tokens", util::Table::cell(result.avg_final_tokens, 2));
  row("refused: no tokens", util::Table::cell(static_cast<std::size_t>(result.refused_no_tokens)));
  row("refused: untrusted", util::Table::cell(static_cast<std::size_t>(result.refused_untrusted)));
  row("aborted transfers", util::Table::cell(static_cast<std::size_t>(result.aborted)));
  row("drops: buffer / ttl",
      util::Table::cell(static_cast<std::size_t>(result.dropped_buffer)) + " / " +
          util::Table::cell(static_cast<std::size_t>(result.dropped_ttl)));
  row("energy (J)", util::Table::cell(result.total_energy_j, 1));
  table.print(os);
}

void write_timing_report(std::ostream& os, const PhaseTimings& timing) {
  constexpr double kMs = 1e-6;
  const double wall_ms = static_cast<double>(timing.wall_ns) * kMs;
  util::Table table({"phase", "ms", "% wall"});
  auto row = [&table, wall_ms](const std::string& name, std::uint64_t ns) {
    const double ms = static_cast<double>(ns) * kMs;
    const double pct = wall_ms > 0.0 ? 100.0 * ms / wall_ms : 0.0;
    table.add_row({name, util::Table::cell(ms, 2), util::Table::cell(pct, 1)});
  };
  row("contact scan", timing.scan_ns);
  row("routing", timing.routing_ns);
  row("transfer", timing.transfer_ns);
  row("workload", timing.workload_ns);
  table.add_row({"wall", util::Table::cell(wall_ms, 2), util::Table::cell(100.0, 1)});
  table.print(os);
  os << "scans: " << timing.scans;
  if (timing.scans > 0) {
    os << "  (" << util::Table::cell(
                       static_cast<double>(timing.scan_ns) / static_cast<double>(timing.scans) *
                           1e-3,
                       2)
       << " us/scan)";
  }
  os << "\n";
}

util::Table comparison_table(const std::vector<RunResult>& results) {
  util::Table table({"scheme", "seed", "MDR", "traffic", "latency s", "hops",
                     "tokens paid", "aborted"});
  for (const RunResult& r : results) {
    table.add_row({r.scheme, std::to_string(r.seed), util::Table::cell(r.mdr, 4),
                   util::Table::cell(static_cast<std::size_t>(r.traffic)),
                   util::Table::cell(r.mean_latency_s, 1), util::Table::cell(r.mean_hops, 2),
                   util::Table::cell(r.tokens_paid, 1),
                   util::Table::cell(static_cast<std::size_t>(r.aborted))});
  }
  return table;
}

void write_series_csv(std::ostream& os, const stats::TimeSeries& series,
                      const std::string& value_name) {
  os << "time_s," << value_name << "\n";
  for (const stats::Sample& s : series.samples()) {
    os << s.time.sec() << "," << s.value << "\n";
  }
}

ContactSummary summarize_contacts(const net::ContactTrace& trace) {
  ContactSummary summary;
  summary.contacts = trace.count();
  summary.mean_duration_s = trace.mean_duration_s();
  summary.total_contact_time_s = trace.total_contact_time_s();
  if (trace.contacts().empty()) return summary;

  std::vector<double> durations;
  durations.reserve(trace.count());
  for (const auto& c : trace.contacts()) durations.push_back(c.duration().sec());
  summary.median_duration_s = util::percentile(durations, 0.5);

  // Inter-contact gaps per pair (contacts are sorted by start time).
  std::unordered_map<std::uint64_t, double> last_down;
  util::RunningStats gaps;
  for (const auto& c : trace.contacts()) {
    const std::uint64_t key = (static_cast<std::uint64_t>(c.a.value()) << 32) | c.b.value();
    if (auto it = last_down.find(key); it != last_down.end()) {
      const double gap = c.up.sec() - it->second;
      if (gap > 0.0) gaps.add(gap);
    }
    last_down[key] = std::max(last_down[key], c.down.sec());
  }
  summary.mean_intercontact_s = gaps.mean();
  return summary;
}

void write_contact_summary(std::ostream& os, const ContactSummary& summary) {
  util::Table table({"contact metric", "value"});
  table.add_row({"contacts", util::Table::cell(summary.contacts)});
  table.add_row({"mean duration (s)", util::Table::cell(summary.mean_duration_s, 1)});
  table.add_row({"median duration (s)", util::Table::cell(summary.median_duration_s, 1)});
  table.add_row({"mean inter-contact (s)", util::Table::cell(summary.mean_intercontact_s, 1)});
  table.add_row({"total contact time (s)", util::Table::cell(summary.total_contact_time_s, 1)});
  table.print(os);
}

}  // namespace dtnic::scenario
