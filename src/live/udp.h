#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

/// \file udp.h
/// Minimal non-blocking IPv4 UDP socket for the live overlay. POSIX only —
/// the simulator never links this library, so the rest of the codebase stays
/// platform-neutral. Errors surface as std::runtime_error (construction/bind)
/// or as empty results (transient send/receive failures), matching UDP's
/// best-effort semantics: the overlay's keepalive layer owns reliability.

namespace dtnic::live {

/// An IPv4 endpoint. `host` is a dotted quad ("127.0.0.1"); name resolution
/// is out of scope for the overlay.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Parse "ip:port"; nullopt on malformed input.
[[nodiscard]] std::optional<Endpoint> parse_endpoint(const std::string& s);

class UdpSocket {
 public:
  /// Bind to 127.0.0.1:\p port (0 = ephemeral; see local_port()).
  /// Throws std::runtime_error on socket/bind failure.
  explicit UdpSocket(std::uint16_t port);
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  ~UdpSocket();

  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }

  /// Best-effort datagram send; false on any error (message dropped, as UDP
  /// would anyway).
  bool send_to(const Endpoint& to, std::span<const std::uint8_t> bytes);

  /// One received datagram and its sender.
  struct Datagram {
    Endpoint from;
    std::vector<std::uint8_t> bytes;
  };
  /// Non-blocking receive; nullopt when no datagram is queued.
  [[nodiscard]] std::optional<Datagram> receive();

 private:
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
};

}  // namespace dtnic::live
