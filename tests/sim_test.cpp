#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace dtnic::sim {
namespace {

using util::SimTime;

// --- EventQueue ---------------------------------------------------------------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  (void)q.push(SimTime::seconds(3), [&] { fired.push_back(3); });
  (void)q.push(SimTime::seconds(1), [&] { fired.push_back(1); });
  (void)q.push(SimTime::seconds(2), [&] { fired.push_back(2); });
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    (void)q.push(SimTime::seconds(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(SimTime::seconds(1), [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  q.cancel(id);  // double-cancel is harmless
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> fired;
  (void)q.push(SimTime::seconds(1), [&] { fired.push_back(1); });
  const EventId mid = q.push(SimTime::seconds(2), [&] { fired.push_back(2); });
  (void)q.push(SimTime::seconds(3), [&] { fired.push_back(3); });
  q.cancel(mid);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId first = q.push(SimTime::seconds(1), [] {});
  (void)q.push(SimTime::seconds(2), [] {});
  q.cancel(first);
  EXPECT_DOUBLE_EQ(q.next_time().sec(), 2.0);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.pop(), std::invalid_argument);
}

TEST(EventQueue, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW((void)q.push(SimTime::zero(), EventFn{}), std::invalid_argument);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(SimTime::seconds(1), [] {});
  (void)q.push(SimTime::seconds(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, BookkeepingReleasedWhenQueueDrains) {
  // Cancelled stragglers must not linger once the queue is logically empty:
  // draining (by pop or by cancel) clears the heap and the cancel markers.
  EventQueue q;
  std::vector<EventId> ids;
  ids.reserve(100);
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.push(SimTime::seconds(i + 1), [] {}));
  }
  for (int i = 0; i < 100; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
  while (!q.empty()) (void)q.pop();
  EXPECT_EQ(q.heap_entries(), 0u);
  EXPECT_EQ(q.cancelled_entries(), 0u);

  // Cancel-only drain (no pops) must release everything too.
  std::vector<EventId> batch;
  for (int i = 0; i < 50; ++i) batch.push_back(q.push(SimTime::seconds(i + 1), [] {}));
  for (const EventId id : batch) q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.heap_entries(), 0u);
  EXPECT_EQ(q.cancelled_entries(), 0u);
}

TEST(EventQueue, CancelHeavyLoadCompactsHeap) {
  // Cancelling far more events than remain live must bound the raw heap at
  // the live count instead of retaining every dead entry until it surfaces.
  EventQueue q;
  std::vector<EventId> ids;
  const int n = 1024;
  for (int i = 0; i < n; ++i) ids.push_back(q.push(SimTime::seconds(i + 1), [] {}));
  for (int i = 0; i < n; ++i) {
    if (i % 16 != 0) q.cancel(ids[static_cast<std::size_t>(i)]);  // keep 64 live
  }
  EXPECT_EQ(q.size(), 64u);
  EXPECT_LE(q.heap_entries(), q.size() + 64);  // compaction kicked in
  // The survivors still fire in time order.
  double last = 0.0;
  while (!q.empty()) {
    const auto popped = q.pop();
    EXPECT_GT(popped.time.sec(), last);
    last = popped.time.sec();
  }
}

// --- Simulator ---------------------------------------------------------------

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  double seen = -1.0;
  (void)sim.schedule_at(SimTime::seconds(10), [&] { seen = sim.now().sec(); });
  sim.run_until(SimTime::seconds(20));
  EXPECT_DOUBLE_EQ(seen, 10.0);
  EXPECT_DOUBLE_EQ(sim.now().sec(), 20.0);  // clock lands on the horizon
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> at;
  (void)sim.schedule_at(SimTime::seconds(5), [&] {
    (void)sim.schedule_in(SimTime::seconds(3), [&] { at.push_back(sim.now().sec()); });
  });
  sim.run_until(SimTime::seconds(100));
  ASSERT_EQ(at.size(), 1u);
  EXPECT_DOUBLE_EQ(at[0], 8.0);
}

TEST(Simulator, PastSchedulingRejected) {
  Simulator sim;
  (void)sim.schedule_at(SimTime::seconds(5), [] {});
  sim.run_until(SimTime::seconds(10));
  EXPECT_THROW((void)sim.schedule_at(SimTime::seconds(3), [] {}), std::invalid_argument);
  EXPECT_THROW((void)sim.schedule_in(SimTime::seconds(-1), [] {}), std::invalid_argument);
}

TEST(Simulator, HorizonExcludesLaterEvents) {
  Simulator sim;
  bool late = false;
  (void)sim.schedule_at(SimTime::seconds(50), [&] { late = true; });
  sim.run_until(SimTime::seconds(10));
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(SimTime::seconds(100));
  EXPECT_TRUE(late);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  int count = 0;
  (void)sim.schedule_every(SimTime::seconds(10), [&] { ++count; });
  sim.run_until(SimTime::seconds(55));
  EXPECT_EQ(count, 5);  // t = 10, 20, 30, 40, 50
}

TEST(Simulator, PeriodicFromFirstTime) {
  Simulator sim;
  std::vector<double> at;
  (void)sim.schedule_every_from(SimTime::zero(), SimTime::seconds(20),
                                [&] { at.push_back(sim.now().sec()); });
  sim.run_until(SimTime::seconds(45));
  EXPECT_EQ(at, (std::vector<double>{0.0, 20.0, 40.0}));
}

TEST(Simulator, CancelStopsPeriodic) {
  Simulator sim;
  int count = 0;
  const EventId id = sim.schedule_every(SimTime::seconds(1), [&] { ++count; });
  (void)sim.schedule_at(SimTime::seconds(3.5), [&] { sim.cancel(id); });
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicCanCancelItself) {
  Simulator sim;
  int count = 0;
  EventId id{};
  id = sim.schedule_every(SimTime::seconds(1), [&] {
    if (++count == 2) sim.cancel(id);
  });
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(count, 2);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  (void)sim.schedule_every(SimTime::seconds(1), [&] {
    if (++count == 3) sim.stop();
  });
  sim.run_until(SimTime::seconds(100));
  EXPECT_EQ(count, 3);
  EXPECT_LT(sim.now().sec(), 100.0);
}

TEST(Simulator, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) (void)sim.schedule_at(SimTime::seconds(i + 1), [] {});
  sim.run_until(SimTime::seconds(100));
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulator, RunDrainsQueue) {
  Simulator sim;
  int fired = 0;
  (void)sim.schedule_at(SimTime::seconds(1), [&] {
    ++fired;
    (void)sim.schedule_in(SimTime::seconds(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, DeterministicInterleaving) {
  auto run = [] {
    Simulator sim;
    std::vector<int> order;
    (void)sim.schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
    (void)sim.schedule_at(SimTime::seconds(1), [&] { order.push_back(2); });
    (void)sim.schedule_every_from(SimTime::seconds(1), SimTime::seconds(1),
                                  [&] { order.push_back(3); });
    sim.run_until(SimTime::seconds(2));
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dtnic::sim
