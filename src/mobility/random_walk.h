#pragma once

#include "mobility/mobility_model.h"
#include "util/rng.h"

/// \file random_walk.h
/// Random Walk mobility: repeatedly step a bounded random distance in a
/// uniformly random direction at a uniform random speed. Provides a more
/// local movement pattern than Random Waypoint; used in ablation scenarios.

namespace dtnic::mobility {

struct RandomWalkParams {
  Area area;
  double min_speed_mps = 0.5;
  double max_speed_mps = 1.5;
  double step_distance_m = 100.0;  ///< max displacement per leg
  double min_pause_s = 0.0;
  double max_pause_s = 10.0;
};

class RandomWalk final : public MobilityModel {
 public:
  RandomWalk(const RandomWalkParams& params, util::Rng rng);

  [[nodiscard]] util::Vec2 position_at(util::SimTime t) override;
  [[nodiscard]] double max_speed() const override { return params_.max_speed_mps; }

 private:
  void advance_leg();

  RandomWalkParams params_;
  util::Rng rng_;
  util::Vec2 from_;
  util::Vec2 to_;
  double leg_start_s_ = 0.0;
  double arrive_s_ = 0.0;
  double pause_until_s_ = 0.0;
};

}  // namespace dtnic::mobility
