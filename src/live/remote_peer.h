#pragma once

#include <unordered_set>

#include "routing/chitchat/interest_table.h"
#include "routing/peer.h"
#include "wire/frames.h"

/// \file remote_peer.h
/// The live overlay's implementation of routing::Peer: a contacted node
/// reconstructed from wire state. Identity and rank come from HELLO, the
/// interest table from the latest INTEREST_DIGEST (restored slot-for-slot,
/// so sum_weights over a message's keywords equals the strength the remote
/// node would compute for itself), and the seen-set is accumulated from the
/// peer's own traffic — ids it offered us, sent us, or acknowledged.
///
/// The planning code (ChitChatRouter::plan_for_peer, promise computation,
/// DtnOperator) runs against this object unchanged from the simulator.

namespace dtnic::live {

class RemotePeer final : public routing::Peer {
 public:
  RemotePeer(routing::NodeId id, const routing::chitchat::ChitChatParams& params)
      : id_(id), table_(params) {}

  [[nodiscard]] routing::NodeId id() const final { return id_; }
  [[nodiscard]] int rank() const final { return rank_; }
  [[nodiscard]] bool has_seen(msg::MessageId id) const final { return seen_.count(id) > 0; }
  [[nodiscard]] const routing::chitchat::InterestTable* interest_table() const final {
    return has_digest_ ? &table_ : nullptr;
  }
  [[nodiscard]] double message_strength(const msg::Message& m) const final {
    return table_.sum_weights(m.keywords());
  }

  void set_rank(int rank) { rank_ = rank; }
  void mark_seen(msg::MessageId id) { seen_.insert(id); }

  /// Replace the table with the digest's snapshot (the digest is a full
  /// dump, so stale slots are rebuilt from scratch via a fresh restore set).
  void apply_digest(const wire::InterestDigestFrame& digest, util::SimTime now) {
    table_ = routing::chitchat::InterestTable(table_.params());
    for (const wire::InterestEntry& e : digest.entries) {
      table_.restore(e.keyword, e.weight, e.direct, now);
    }
    has_digest_ = true;
  }

 private:
  routing::NodeId id_;
  int rank_ = 1;
  bool has_digest_ = false;
  routing::chitchat::InterestTable table_;
  std::unordered_set<msg::MessageId> seen_;
};

}  // namespace dtnic::live
