#include "routing/direct_delivery.h"

namespace dtnic::routing {

std::vector<ForwardPlan> DirectDeliveryRouter::plan(Host& self, Host& peer,
                                                    util::SimTime now) {
  (void)now;
  std::vector<ForwardPlan> plans;
  for (const msg::Message* m : self.buffer().messages()) {
    if (peer.has_seen(m->id())) continue;
    if (!oracle().is_destination(peer.id(), *m)) continue;
    plans.push_back(ForwardPlan{m->id(), TransferRole::kDestination});
  }
  return plans;
}

}  // namespace dtnic::routing
