/// Ablation: content enrichment on vs off (the thesis' §1.3.2 contribution).
/// Honest relays that add truthful keywords widen the destination set of a
/// message and earn tag rewards; switching enrichment off removes both
/// effects. Measured: unique deliveries, total (message, destination)
/// deliveries, and tokens paid.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Ablation: content enrichment on/off", scale);

  const scenario::SweepRunner sweep(scale.seeds);

  std::vector<scenario::ScenarioConfig> points;
  for (const bool enabled : {true, false}) {
    scenario::ScenarioConfig cfg = bench::base_config(scale);
    cfg.enrichment_enabled = enabled;
    cfg.enrich_probability = 0.5;  // enrichment-heavy population
    cfg.scheme = scenario::Scheme::kIncentive;
    points.push_back(cfg);
  }
  const auto results = sweep.run_all(points);

  util::Table table({"enrichment", "MDR", "deliveries total", "tokens paid", "traffic"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const bool enabled = points[i].enrichment_enabled;
    const auto& agg = results[i];
    double deliveries = 0.0, paid = 0.0;
    for (const auto& r : agg.raw) {
      deliveries += static_cast<double>(r.deliveries_total);
      paid += r.tokens_paid;
    }
    deliveries /= static_cast<double>(agg.raw.size());
    paid /= static_cast<double>(agg.raw.size());
    table.add_row({enabled ? "on" : "off", util::Table::cell(agg.mdr.mean(), 3),
                   util::Table::cell(deliveries, 1), util::Table::cell(paid, 1),
                   util::Table::cell(agg.traffic.mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: enrichment increases total (message, destination) deliveries\n"
               "(wider reach) and the tokens paid (tag rewards).\n";
  return 0;
}
