#include <gtest/gtest.h>

#include "msg/buffer.h"
#include "msg/id_source.h"
#include "msg/keyword.h"
#include "msg/message.h"

namespace dtnic::msg {
namespace {

using util::NodeId;
using util::SimTime;

constexpr std::uint64_t kMB = 1024 * 1024;

Message make(MessageId id, std::uint64_t size = kMB, NodeId source = NodeId(0)) {
  return Message(id, source, SimTime::zero(), size, Priority::kMedium, 0.8);
}

// --- KeywordTable ------------------------------------------------------------

TEST(KeywordTable, InternIsIdempotent) {
  KeywordTable table;
  const KeywordId a = table.intern("red car");
  const KeywordId b = table.intern("red car");
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(KeywordTable, DistinctNamesDistinctIds) {
  KeywordTable table;
  EXPECT_NE(table.intern("a"), table.intern("b"));
  EXPECT_EQ(table.size(), 2u);
}

TEST(KeywordTable, NameRoundTrip) {
  KeywordTable table;
  const KeywordId id = table.intern("medic");
  EXPECT_EQ(table.name(id), "medic");
}

TEST(KeywordTable, FindWithoutIntern) {
  KeywordTable table;
  (void)table.intern("x");
  EXPECT_TRUE(table.find("x").valid());
  EXPECT_FALSE(table.find("y").valid());
  EXPECT_EQ(table.size(), 1u);
}

TEST(KeywordTable, EmptyKeywordRejected) {
  KeywordTable table;
  EXPECT_THROW((void)table.intern(""), std::invalid_argument);
}

TEST(KeywordTable, UnknownIdRejected) {
  KeywordTable table;
  EXPECT_THROW((void)table.name(KeywordId(99)), std::invalid_argument);
}

TEST(KeywordTable, MakePoolGeneratesDistinct) {
  KeywordTable table;
  const auto pool = table.make_pool(200);
  EXPECT_EQ(pool.size(), 200u);
  EXPECT_EQ(table.size(), 200u);
  EXPECT_EQ(table.name(pool[0]), "kw000");
  EXPECT_EQ(table.name(pool[199]), "kw199");
}

// --- MessageIdSource -----------------------------------------------------------

TEST(MessageIdSource, MonotoneUnique) {
  MessageIdSource ids;
  const MessageId a = ids.next();
  const MessageId b = ids.next();
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(ids.issued(), 2u);
}

// --- Message ---------------------------------------------------------------------

TEST(Message, ConstructionValidation) {
  EXPECT_THROW(Message(MessageId(), NodeId(1), SimTime::zero(), 1, Priority::kHigh, 0.5),
               std::invalid_argument);
  EXPECT_THROW(Message(MessageId(1), NodeId(1), SimTime::zero(), 0, Priority::kHigh, 0.5),
               std::invalid_argument);
  EXPECT_THROW(Message(MessageId(1), NodeId(1), SimTime::zero(), 1, Priority::kHigh, 1.5),
               std::invalid_argument);
}

TEST(Message, SourceIsFirstHop) {
  const Message m = make(MessageId(1), kMB, NodeId(9));
  ASSERT_EQ(m.path().size(), 1u);
  EXPECT_EQ(m.path()[0].node, NodeId(9));
  EXPECT_EQ(m.relay_hop_count(), 0u);
  EXPECT_TRUE(m.visited(NodeId(9)));
  EXPECT_FALSE(m.visited(NodeId(3)));
}

TEST(Message, AnnotateDeduplicates) {
  Message m = make(MessageId(1));
  EXPECT_TRUE(m.annotate({KeywordId(5), NodeId(0), true}));
  EXPECT_FALSE(m.annotate({KeywordId(5), NodeId(2), false}));  // same keyword
  EXPECT_EQ(m.annotations().size(), 1u);
  EXPECT_TRUE(m.has_keyword(KeywordId(5)));
  EXPECT_FALSE(m.has_keyword(KeywordId(6)));
}

TEST(Message, AnnotationsByAnnotator) {
  Message m = make(MessageId(1), kMB, NodeId(0));
  m.annotate({KeywordId(1), NodeId(0), true});
  m.annotate({KeywordId(2), NodeId(3), false});
  m.annotate({KeywordId(3), NodeId(3), true});
  EXPECT_EQ(m.annotations_by(NodeId(0)).size(), 1u);
  EXPECT_EQ(m.annotations_by(NodeId(3)).size(), 2u);
  EXPECT_TRUE(m.annotations_by(NodeId(7)).empty());
}

TEST(Message, TruthfulKeywords) {
  Message m = make(MessageId(1));
  m.set_true_keywords({KeywordId(1), KeywordId(2)});
  EXPECT_TRUE(m.keyword_is_truthful(KeywordId(1)));
  EXPECT_FALSE(m.keyword_is_truthful(KeywordId(3)));
}

TEST(Message, TtlExpiry) {
  Message m(MessageId(1), NodeId(0), SimTime::seconds(100), kMB, Priority::kLow, 0.5);
  EXPECT_FALSE(m.expired(SimTime::hours(1000)));  // infinite by default
  m.set_ttl(SimTime::seconds(50));
  EXPECT_FALSE(m.expired(SimTime::seconds(150)));
  EXPECT_TRUE(m.expired(SimTime::seconds(151)));
}

TEST(Message, ExplicitInfiniteTtlNeverExpires) {
  // An explicit never() TTL must behave exactly like the default: in
  // particular expired() must not evaluate created_at + inf (or worse,
  // inf - inf) into a comparison that misfires. Regression for the SimTime
  // infinity-arithmetic guards.
  Message m(MessageId(1), NodeId(0), SimTime::seconds(100), kMB, Priority::kLow, 0.5);
  m.set_ttl(SimTime::never());
  EXPECT_FALSE(m.ttl().finite());
  EXPECT_FALSE(m.expired(SimTime::seconds(100)));
  EXPECT_FALSE(m.expired(SimTime::hours(1e12)));
  EXPECT_FALSE(m.expired(SimTime::infinity()));
}

TEST(Message, HopRecording) {
  Message m = make(MessageId(1), kMB, NodeId(0));
  m.record_hop(NodeId(1), SimTime::seconds(10));
  m.record_hop(NodeId(2), SimTime::seconds(20));
  EXPECT_EQ(m.relay_hop_count(), 2u);
  EXPECT_TRUE(m.visited(NodeId(1)));
  EXPECT_EQ(m.path().back().received_at.sec(), 20.0);
}

TEST(Message, PathRatingsAccumulate) {
  Message m = make(MessageId(1));
  m.add_path_rating({NodeId(1), NodeId(0), 4.5});
  m.add_path_rating({NodeId(2), NodeId(0), 3.0});
  ASSERT_EQ(m.path_ratings().size(), 2u);
  EXPECT_DOUBLE_EQ(m.path_ratings()[0].rating, 4.5);
}

TEST(Message, PropertiesUpsert) {
  Message m = make(MessageId(1));
  EXPECT_DOUBLE_EQ(m.property_or("copies", 1.0), 1.0);
  m.set_property("copies", 8.0);
  EXPECT_DOUBLE_EQ(m.property_or("copies", 1.0), 8.0);
  m.set_property("copies", 4.0);
  EXPECT_DOUBLE_EQ(m.property_or("copies", 1.0), 4.0);
}

TEST(Message, KeywordsListsDistinct) {
  Message m = make(MessageId(1));
  m.annotate({KeywordId(1), NodeId(0), true});
  m.annotate({KeywordId(2), NodeId(0), true});
  EXPECT_EQ(m.keywords().size(), 2u);
}

TEST(Message, MultimediaMetadata) {
  Message m = make(MessageId(1));
  EXPECT_EQ(m.mime_type(), "image/jpeg");
  EXPECT_EQ(m.format(), "jpeg");
  EXPECT_FALSE(m.location().has_value());
  m.set_mime_type("video/mp4");
  m.set_format("mp4");
  m.set_location({37.95, -91.77});
  EXPECT_EQ(m.mime_type(), "video/mp4");
  ASSERT_TRUE(m.location().has_value());
  EXPECT_DOUBLE_EQ(m.location()->latitude, 37.95);
  EXPECT_DOUBLE_EQ(m.location()->longitude, -91.77);
}

TEST(PriorityNames, Cover) {
  EXPECT_STREQ(priority_name(Priority::kHigh), "high");
  EXPECT_STREQ(priority_name(Priority::kMedium), "medium");
  EXPECT_STREQ(priority_name(Priority::kLow), "low");
  EXPECT_EQ(priority_level(Priority::kHigh), 1);
  EXPECT_EQ(priority_level(Priority::kLow), 3);
}

// --- MessageBuffer ----------------------------------------------------------------

TEST(MessageBuffer, AddAndFind) {
  MessageBuffer buf(10 * kMB);
  auto outcome = buf.add(make(MessageId(1)));
  EXPECT_EQ(outcome.result, MessageBuffer::AddResult::kAdded);
  EXPECT_TRUE(buf.contains(MessageId(1)));
  EXPECT_NE(buf.find(MessageId(1)), nullptr);
  EXPECT_EQ(buf.used_bytes(), kMB);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(MessageBuffer, RejectsDuplicates) {
  MessageBuffer buf(10 * kMB);
  (void)buf.add(make(MessageId(1)));
  auto outcome = buf.add(make(MessageId(1)));
  EXPECT_EQ(outcome.result, MessageBuffer::AddResult::kDuplicate);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(MessageBuffer, RejectsOversized) {
  MessageBuffer buf(2 * kMB);
  auto outcome = buf.add(make(MessageId(1), 3 * kMB));
  EXPECT_EQ(outcome.result, MessageBuffer::AddResult::kTooLarge);
  EXPECT_TRUE(buf.empty());
}

TEST(MessageBuffer, EvictsOldestFirst) {
  MessageBuffer buf(3 * kMB);
  (void)buf.add(make(MessageId(1)));
  (void)buf.add(make(MessageId(2)));
  (void)buf.add(make(MessageId(3)));
  auto outcome = buf.add(make(MessageId(4)));
  EXPECT_EQ(outcome.result, MessageBuffer::AddResult::kAdded);
  ASSERT_EQ(outcome.evicted.size(), 1u);
  EXPECT_EQ(outcome.evicted[0].id(), MessageId(1));
  EXPECT_FALSE(buf.contains(MessageId(1)));
  EXPECT_TRUE(buf.contains(MessageId(4)));
}

TEST(MessageBuffer, OwnMessagesProtectedFromEviction) {
  MessageBuffer buf(3 * kMB);
  (void)buf.add(make(MessageId(1)), /*own=*/true);
  (void)buf.add(make(MessageId(2)));
  (void)buf.add(make(MessageId(3)));
  auto outcome = buf.add(make(MessageId(4)));
  ASSERT_EQ(outcome.evicted.size(), 1u);
  EXPECT_EQ(outcome.evicted[0].id(), MessageId(2));  // oldest non-own
  EXPECT_TRUE(buf.contains(MessageId(1)));
}

TEST(MessageBuffer, OwnMessagesEvictedOnlyAsLastResort) {
  MessageBuffer buf(2 * kMB);
  (void)buf.add(make(MessageId(1)), true);
  (void)buf.add(make(MessageId(2)), true);
  // Only own messages remain: the oldest own one is sacrificed.
  auto outcome = buf.add(make(MessageId(3)));
  EXPECT_EQ(outcome.result, MessageBuffer::AddResult::kAdded);
  ASSERT_EQ(outcome.evicted.size(), 1u);
  EXPECT_EQ(outcome.evicted[0].id(), MessageId(1));
  EXPECT_TRUE(buf.contains(MessageId(2)));
  EXPECT_TRUE(buf.contains(MessageId(3)));
}

msg::Message make_prio(MessageId id, Priority p, double quality,
                       std::uint64_t size = kMB) {
  return Message(id, NodeId(0), SimTime::zero(), size, p, quality);
}

TEST(MessageBufferPriorityPolicy, EvictsLowestPriorityFirst) {
  MessageBuffer buf(3 * kMB, DropPolicy::kLowPriorityFirst);
  (void)buf.add(make_prio(MessageId(1), Priority::kLow, 0.9));
  (void)buf.add(make_prio(MessageId(2), Priority::kHigh, 0.5));
  (void)buf.add(make_prio(MessageId(3), Priority::kMedium, 0.5));
  auto outcome = buf.add(make_prio(MessageId(4), Priority::kHigh, 0.9));
  EXPECT_EQ(outcome.result, MessageBuffer::AddResult::kAdded);
  ASSERT_EQ(outcome.evicted.size(), 1u);
  EXPECT_EQ(outcome.evicted[0].id(), MessageId(1));  // the low-priority copy
}

TEST(MessageBufferPriorityPolicy, QualityBreaksPriorityTies) {
  MessageBuffer buf(2 * kMB, DropPolicy::kLowPriorityFirst);
  (void)buf.add(make_prio(MessageId(1), Priority::kMedium, 0.9));
  (void)buf.add(make_prio(MessageId(2), Priority::kMedium, 0.2));
  auto outcome = buf.add(make_prio(MessageId(3), Priority::kHigh, 0.5));
  ASSERT_EQ(outcome.evicted.size(), 1u);
  EXPECT_EQ(outcome.evicted[0].id(), MessageId(2));  // worst quality goes
}

TEST(MessageBufferPriorityPolicy, RefusesCopyWorseThanEveryVictim) {
  MessageBuffer buf(2 * kMB, DropPolicy::kLowPriorityFirst);
  (void)buf.add(make_prio(MessageId(1), Priority::kHigh, 0.9));
  (void)buf.add(make_prio(MessageId(2), Priority::kMedium, 0.8));
  // An incoming low-priority relayed copy must not displace better content.
  auto outcome = buf.add(make_prio(MessageId(3), Priority::kLow, 0.9));
  EXPECT_EQ(outcome.result, MessageBuffer::AddResult::kNotAdmitted);
  EXPECT_TRUE(outcome.evicted.empty());
  EXPECT_TRUE(buf.contains(MessageId(1)));
  EXPECT_TRUE(buf.contains(MessageId(2)));
  EXPECT_FALSE(buf.contains(MessageId(3)));
}

TEST(MessageBufferPriorityPolicy, OwnCreationsAlwaysAdmitted) {
  MessageBuffer buf(2 * kMB, DropPolicy::kLowPriorityFirst);
  (void)buf.add(make_prio(MessageId(1), Priority::kHigh, 0.9));
  (void)buf.add(make_prio(MessageId(2), Priority::kHigh, 0.8));
  // A node's own new message is stored even if it is low priority.
  auto outcome = buf.add(make_prio(MessageId(3), Priority::kLow, 0.1), /*own=*/true);
  EXPECT_EQ(outcome.result, MessageBuffer::AddResult::kAdded);
  EXPECT_EQ(outcome.evicted.size(), 1u);
}

TEST(MessageBufferPriorityPolicy, FifoIsDefault) {
  MessageBuffer buf(kMB);
  EXPECT_EQ(buf.drop_policy(), DropPolicy::kFifoOldest);
  MessageBuffer prio(kMB, DropPolicy::kLowPriorityFirst);
  EXPECT_EQ(prio.drop_policy(), DropPolicy::kLowPriorityFirst);
}

TEST(MessageBuffer, EvictsMultipleForLargeMessage) {
  MessageBuffer buf(4 * kMB);
  (void)buf.add(make(MessageId(1)));
  (void)buf.add(make(MessageId(2)));
  (void)buf.add(make(MessageId(3)));
  auto outcome = buf.add(make(MessageId(4), 3 * kMB));
  EXPECT_EQ(outcome.result, MessageBuffer::AddResult::kAdded);
  EXPECT_EQ(outcome.evicted.size(), 2u);
  EXPECT_EQ(buf.used_bytes(), 4 * kMB);
}

TEST(MessageBuffer, RemoveFreesSpace) {
  MessageBuffer buf(2 * kMB);
  (void)buf.add(make(MessageId(1)));
  EXPECT_TRUE(buf.remove(MessageId(1)));
  EXPECT_FALSE(buf.remove(MessageId(1)));
  EXPECT_EQ(buf.used_bytes(), 0u);
  EXPECT_TRUE(buf.empty());
}

TEST(MessageBuffer, DropExpiredReturnsDropped) {
  MessageBuffer buf(10 * kMB);
  Message fresh = make(MessageId(1));
  Message stale = make(MessageId(2));
  stale.set_ttl(SimTime::seconds(10));
  (void)buf.add(std::move(fresh));
  (void)buf.add(std::move(stale));
  const auto dropped = buf.drop_expired(SimTime::seconds(100));
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].id(), MessageId(2));
  EXPECT_TRUE(buf.contains(MessageId(1)));
  EXPECT_EQ(buf.used_bytes(), kMB);
}

TEST(MessageBuffer, DropExpiredKeepsExplicitInfiniteTtl) {
  MessageBuffer buf(10 * kMB);
  Message forever = make(MessageId(1));
  forever.set_ttl(SimTime::never());
  Message stale = make(MessageId(2));
  stale.set_ttl(SimTime::seconds(10));
  (void)buf.add(std::move(forever));
  (void)buf.add(std::move(stale));
  const auto dropped = buf.drop_expired(SimTime::hours(1e9));
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].id(), MessageId(2));
  EXPECT_TRUE(buf.contains(MessageId(1)));
}

TEST(MessageBuffer, MessagesInInsertionOrder) {
  MessageBuffer buf(10 * kMB);
  (void)buf.add(make(MessageId(3)));
  (void)buf.add(make(MessageId(1)));
  (void)buf.add(make(MessageId(2)));
  const auto msgs = buf.messages();
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[0]->id(), MessageId(3));
  EXPECT_EQ(msgs[1]->id(), MessageId(1));
  EXPECT_EQ(msgs[2]->id(), MessageId(2));
}

TEST(MessageBuffer, FindMutableAllowsEnrichment) {
  MessageBuffer buf(10 * kMB);
  (void)buf.add(make(MessageId(1)));
  Message* m = buf.find_mutable(MessageId(1));
  ASSERT_NE(m, nullptr);
  m->annotate({KeywordId(9), NodeId(5), true});
  EXPECT_TRUE(buf.find(MessageId(1))->has_keyword(KeywordId(9)));
}

TEST(MessageBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(MessageBuffer(0), std::invalid_argument);
}

// Property: used_bytes is always the sum of stored message sizes.
TEST(MessageBuffer, UsedBytesInvariantUnderChurn) {
  MessageBuffer buf(8 * kMB);
  util::MessageId::underlying next = 0;
  for (int round = 0; round < 200; ++round) {
    (void)buf.add(make(MessageId(next++), ((round % 3) + 1) * kMB / 2));
    if (round % 5 == 0 && !buf.empty()) {
      (void)buf.remove(buf.messages().front()->id());
    }
    std::uint64_t sum = 0;
    for (const Message* m : buf.messages()) sum += m->size_bytes();
    ASSERT_EQ(sum, buf.used_bytes());
    ASSERT_LE(buf.used_bytes(), buf.capacity_bytes());
  }
}

}  // namespace
}  // namespace dtnic::msg
