/// Cross-scheme comparison (extension beyond the paper's figures): MDR,
/// traffic, latency and hops for every implemented routing scheme on the
/// same world and workload. Positions the paper's scheme among the classic
/// DTN baselines its introduction discusses (§1.1-§1.2).

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Extension: all routing schemes side by side", scale);

  const scenario::SweepRunner sweep(scale.seeds);
  const scenario::Scheme schemes[] = {
      scenario::Scheme::kIncentive,     scenario::Scheme::kChitChat,
      scenario::Scheme::kEpidemic,      scenario::Scheme::kVaccineEpidemic,
      scenario::Scheme::kProphet,
      scenario::Scheme::kNectar,        scenario::Scheme::kSprayAndWait,
      scenario::Scheme::kTwoHop,        scenario::Scheme::kFirstContact,
      scenario::Scheme::kDirectDelivery};

  std::vector<scenario::ScenarioConfig> points;
  for (const auto scheme : schemes) {
    scenario::ScenarioConfig cfg = bench::base_config(scale);
    cfg.scheme = scheme;
    cfg.selfish_fraction = 0.2;
    // Scarce interests so routing quality differentiates the schemes.
    cfg.interests_per_node = 5;
    cfg.keywords_per_message = 2;
    points.push_back(cfg);
  }
  const auto results = sweep.run_all(points);

  util::Table table({"scheme", "MDR", "traffic", "latency (s)", "hops"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& agg = results[i];
    table.add_row({scenario::scheme_name(points[i].scheme),
                   util::Table::cell(agg.mdr.mean(), 3),
                   util::Table::cell(agg.traffic.mean(), 0),
                   util::Table::cell(agg.mean_latency_s.mean(), 0),
                   util::Table::cell(agg.mean_hops.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nexpected ordering: epidemic tops MDR at maximal traffic; direct delivery\n"
               "is the floor; the data-centric schemes sit between with far less traffic.\n";
  return 0;
}
