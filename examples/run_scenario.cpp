/// Config-driven experiment runner: replays any scenario described in a
/// ONE-style `key = value` file (see examples/configs/) and prints the run
/// report — the workflow a downstream user follows to test their own
/// parameter ranges without recompiling.
///
///   ./run_scenario --config examples/configs/selfish_sweep.cfg
///   ./run_scenario --config ... --set selfish_fraction=0.4 --seeds 5
///
/// Seeds run in parallel on the shared worker pool (--threads or
/// DTNIC_THREADS to size it); the aggregate is identical to a serial run.

#include <iostream>

#include "scenario/config_io.h"
#include "scenario/experiment.h"
#include "scenario/report.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  cli.add_flag("config", "", "path to a scenario .cfg file (empty = Table 5.1 defaults)");
  cli.add_flag("set", "", "inline override, e.g. --set selfish_fraction=0.3");
  cli.add_flag("seeds", "3", "simulation runs to average");
  cli.add_flag("threads", "0", "worker threads (0 = DTNIC_THREADS or hardware)");
  cli.add_flag("print-config", "false", "dump the effective configuration and exit");
  cli.add_flag("timing", "false", "print a per-phase wall-clock breakdown after the report");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }
  if (cli.get_int("threads") > 0) {
    util::ThreadPool::set_shared_threads(static_cast<std::size_t>(cli.get_int("threads")));
  }

  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::paper_defaults();
  try {
    if (!cli.get("config").empty()) {
      cfg = scenario::apply_config(cfg, util::Config::load_file(cli.get("config")));
    }
    if (!cli.get("set").empty()) {
      cfg = scenario::apply_config(cfg, util::Config::parse(cli.get("set")));
    }
  } catch (const std::exception& e) {
    std::cerr << "configuration error: " << e.what() << "\n";
    return 1;
  }

  if (cli.get_bool("print-config")) {
    std::cout << scenario::to_config_text(cfg);
    return 0;
  }

  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  std::cout << "running '" << scenario::scheme_name(cfg.scheme) << "' on " << cfg.num_nodes
            << " nodes for " << cfg.sim_hours << " h (" << seeds << " seed(s), "
            << util::ThreadPool::shared().size() << " worker thread(s))...\n\n";

  const scenario::ExperimentRunner runner(seeds);
  const scenario::AggregateResult agg = runner.run(cfg);

  util::Table table({"metric", "mean", "stddev"});
  auto row = [&table](const std::string& name, const util::RunningStats& s, int precision) {
    table.add_row({name, util::Table::cell(s.mean(), precision),
                   util::Table::cell(s.stddev(), precision)});
  };
  row("created", agg.created, 1);
  row("delivered", agg.delivered, 1);
  row("MDR", agg.mdr, 4);
  row("traffic (transfers)", agg.traffic, 1);
  row("mean latency (s)", agg.mean_latency_s, 1);
  row("mean hops", agg.mean_hops, 2);
  row("final tokens per node", agg.avg_final_tokens, 2);
  row("refused: no tokens", agg.refused_no_tokens, 1);
  row("refused: untrusted", agg.refused_untrusted, 1);
  table.print(std::cout);

  if (cli.get_bool("timing")) {
    std::cout << "\nper-phase wall-clock (mean across " << agg.runs << " seed(s), ms):\n";
    util::Table timing({"phase", "mean ms", "stddev"});
    auto trow = [&timing](const std::string& name, const util::RunningStats& s) {
      timing.add_row(
          {name, util::Table::cell(s.mean(), 2), util::Table::cell(s.stddev(), 2)});
    };
    trow("contact scan", agg.scan_ms);
    trow("routing", agg.routing_ms);
    trow("transfer", agg.transfer_ms);
    trow("workload", agg.workload_ms);
    trow("wall", agg.wall_ms);
    timing.print(std::cout);
    if (!agg.raw.empty()) {
      std::cout << "\nseed " << agg.raw.front().seed << " breakdown:\n";
      scenario::write_timing_report(std::cout, agg.raw.front().timing);
    }
  }
  return 0;
}
