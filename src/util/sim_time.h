#pragma once

#include <compare>
#include <cmath>
#include <limits>
#include <ostream>

/// \file sim_time.h
/// Simulation time as a strong type over seconds. Keeps durations and
/// absolute instants from silently mixing with plain doubles in formulas.

namespace dtnic::util {

/// An instant (or duration) on the simulation clock, in seconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(double seconds) : seconds_(seconds) {}

  [[nodiscard]] static constexpr SimTime zero() { return SimTime(0.0); }
  [[nodiscard]] static constexpr SimTime seconds(double s) { return SimTime(s); }
  [[nodiscard]] static constexpr SimTime minutes(double m) { return SimTime(m * 60.0); }
  [[nodiscard]] static constexpr SimTime hours(double h) { return SimTime(h * 3600.0); }
  [[nodiscard]] static constexpr SimTime infinity() {
    return SimTime(std::numeric_limits<double>::infinity());
  }
  /// The instant that never arrives — an unlimited TTL's expiry. Alias of
  /// infinity(); reads better at call sites comparing against deadlines.
  [[nodiscard]] static constexpr SimTime never() { return infinity(); }

  [[nodiscard]] constexpr double sec() const { return seconds_; }
  [[nodiscard]] constexpr bool finite() const { return std::isfinite(seconds_); }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  // Arithmetic is NaN-safe for the infinity cases IEEE 754 leaves undefined:
  // never() - never() and never() * 0.0 would produce NaN, and NaN poisons
  // every ordered comparison (deadline checks silently become false). Those
  // two cases resolve to the identity instead — scaling a never-deadline or
  // differencing two of them still means "never"/"no time elapsed". Checks
  // use v != v rather than std::isnan, which is not constexpr-friendly here.

  constexpr SimTime& operator+=(SimTime d) { return *this = *this + d; }
  constexpr SimTime& operator-=(SimTime d) { return *this = *this - d; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    const double v = a.seconds_ + b.seconds_;
    return SimTime(v != v ? 0.0 : v);  // inf + (-inf): no net displacement
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    const double v = a.seconds_ - b.seconds_;
    return SimTime(v != v ? 0.0 : v);  // never() - never(): nothing elapsed
  }
  friend constexpr SimTime operator*(SimTime a, double k) {
    const double v = a.seconds_ * k;
    return SimTime(v != v && k == 0.0 ? 0.0 : v);  // never() * 0 is zero time
  }
  friend constexpr SimTime operator*(double k, SimTime a) { return a * k; }
  friend constexpr SimTime operator/(SimTime a, double k) { return SimTime(a.seconds_ / k); }
  /// Ratio of two durations (dimensionless).
  friend constexpr double operator/(SimTime a, SimTime b) { return a.seconds_ / b.seconds_; }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.seconds_ << "s"; }

 private:
  double seconds_ = 0.0;
};

}  // namespace dtnic::util
