#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mobility/stationary.h"
#include "mobility/waypoint_trace.h"
#include "net/connectivity.h"
#include "net/contact_trace.h"
#include "net/transfer.h"
#include "sim/simulator.h"

namespace dtnic::net {
namespace {

using mobility::Stationary;
using mobility::WaypointTrace;
using util::NodeId;
using util::SimTime;
using util::Vec2;

struct LinkEvent {
  bool up;
  NodeId a;
  NodeId b;
  double time_s;
};

class ConnectivityFixture : public ::testing::Test {
 protected:
  ConnectivityFixture() : manager(sim, radio, SimTime::seconds(1.0)) {
    manager.on_link_up([this](NodeId a, NodeId b, double) {
      events.push_back({true, a, b, sim.now().sec()});
    });
    manager.on_link_down([this](NodeId a, NodeId b) {
      events.push_back({false, a, b, sim.now().sec()});
    });
  }

  RadioParams radio;  // 100 m range
  sim::Simulator sim;
  ConnectivityManager manager;
  std::vector<LinkEvent> events;
  std::vector<std::unique_ptr<mobility::MobilityModel>> models;

  NodeId add(std::unique_ptr<mobility::MobilityModel> m) {
    const NodeId id(static_cast<NodeId::underlying>(models.size()));
    models.push_back(std::move(m));
    manager.add_node(id, models.back().get());
    return id;
  }
};

TEST_F(ConnectivityFixture, DetectsStaticNeighbors) {
  const NodeId a = add(std::make_unique<Stationary>(Vec2{0, 0}));
  const NodeId b = add(std::make_unique<Stationary>(Vec2{50, 0}));
  const NodeId c = add(std::make_unique<Stationary>(Vec2{500, 0}));
  manager.scan();
  EXPECT_TRUE(manager.connected(a, b));
  EXPECT_FALSE(manager.connected(a, c));
  EXPECT_EQ(manager.active_links(), 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].up);
}

TEST_F(ConnectivityFixture, NoDuplicateLinkUpAcrossScans) {
  (void)add(std::make_unique<Stationary>(Vec2{0, 0}));
  (void)add(std::make_unique<Stationary>(Vec2{10, 0}));
  manager.scan();
  manager.scan();
  manager.scan();
  EXPECT_EQ(events.size(), 1u);
  EXPECT_EQ(manager.contacts_formed(), 1u);
}

TEST_F(ConnectivityFixture, LinkDownWhenMovingApart) {
  // b walks away from a: in range until t=10, out of range after.
  (void)add(std::make_unique<Stationary>(Vec2{0, 0}));
  (void)add(std::make_unique<WaypointTrace>(std::vector<WaypointTrace::Keyframe>{
      {SimTime::seconds(0), {50, 0}}, {SimTime::seconds(20), {250, 0}}}));
  manager.start();
  sim.run_until(SimTime::seconds(20));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].up);
  EXPECT_FALSE(events[1].up);
  // leaves 100 m range when 50 + 10t > 100 => t > 5.
  EXPECT_GT(events[1].time_s, 5.0);
  EXPECT_LE(events[1].time_s, 7.0);
  EXPECT_EQ(manager.active_links(), 0u);
}

TEST_F(ConnectivityFixture, ReencounterFormsNewContact) {
  (void)add(std::make_unique<Stationary>(Vec2{0, 0}));
  (void)add(std::make_unique<WaypointTrace>(std::vector<WaypointTrace::Keyframe>{
      {SimTime::seconds(0), {50, 0}},
      {SimTime::seconds(10), {300, 0}},
      {SimTime::seconds(20), {50, 0}}}));
  manager.start();
  sim.run_until(SimTime::seconds(25));
  EXPECT_EQ(manager.contacts_formed(), 2u);
  EXPECT_TRUE(manager.connected(NodeId(0), NodeId(1)));
}

TEST_F(ConnectivityFixture, GateSuppressesContact) {
  const NodeId a = add(std::make_unique<Stationary>(Vec2{0, 0}));
  const NodeId b = add(std::make_unique<Stationary>(Vec2{10, 0}));
  manager.set_participation_gate([](NodeId id) { return id.value() != 1; });
  manager.scan();
  EXPECT_FALSE(manager.connected(a, b));
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(manager.contacts_suppressed(), 1u);
  // The gate is consulted once per encounter: later scans do not retry.
  manager.scan();
  EXPECT_EQ(manager.contacts_suppressed(), 1u);
}

TEST_F(ConnectivityFixture, SuppressedTeardownDoesNotGrowAdjacency) {
  // Regression: teardown used operator[] on the adjacency map, inserting
  // empty sets for nodes whose pairs were only ever suppressed — unbounded
  // growth over long selfish-heavy runs. Under a 100%-suppressed gate the
  // map must stay empty no matter how much encounter churn happens.
  manager.set_participation_gate([](NodeId) { return false; });
  (void)add(std::make_unique<Stationary>(Vec2{0, 0}));
  // An orbiter that repeatedly enters and leaves range of node 0.
  std::vector<WaypointTrace::Keyframe> keyframes;
  for (int cycle = 0; cycle < 10; ++cycle) {
    keyframes.push_back({SimTime::seconds(cycle * 20.0), {50, 0}});
    keyframes.push_back({SimTime::seconds(cycle * 20.0 + 10.0), {300, 0}});
  }
  (void)add(std::make_unique<WaypointTrace>(std::move(keyframes)));
  manager.start();
  sim.run_until(SimTime::seconds(200));
  EXPECT_GE(manager.contacts_suppressed(), 10u);
  EXPECT_EQ(manager.adjacency_entries(), 0u);
  EXPECT_EQ(manager.active_links(), 0u);
  EXPECT_TRUE(events.empty());
}

TEST_F(ConnectivityFixture, AdjacencyEntriesErasedWhenLinksDrop) {
  // Connected pairs that separate must not leave empty sets behind.
  (void)add(std::make_unique<Stationary>(Vec2{0, 0}));
  (void)add(std::make_unique<WaypointTrace>(std::vector<WaypointTrace::Keyframe>{
      {SimTime::seconds(0), {50, 0}}, {SimTime::seconds(20), {400, 0}}}));
  manager.start();
  sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(manager.adjacency_entries(), 2u);  // both endpoints have a link
  sim.run_until(SimTime::seconds(30));
  EXPECT_EQ(manager.active_links(), 0u);
  EXPECT_EQ(manager.adjacency_entries(), 0u);
}

TEST_F(ConnectivityFixture, NeighborsSortedAndSymmetric) {
  const NodeId a = add(std::make_unique<Stationary>(Vec2{0, 0}));
  const NodeId b = add(std::make_unique<Stationary>(Vec2{50, 0}));
  const NodeId c = add(std::make_unique<Stationary>(Vec2{0, 50}));
  manager.scan();
  const auto na = manager.neighbors_of(a);
  ASSERT_EQ(na.size(), 2u);
  EXPECT_EQ(na[0], b);
  EXPECT_EQ(na[1], c);
  EXPECT_EQ(manager.neighbors_of(b).size(), 2u);  // b-c are 70.7 m apart
}

TEST_F(ConnectivityFixture, ConnectedPairsSorted) {
  (void)add(std::make_unique<Stationary>(Vec2{0, 0}));
  (void)add(std::make_unique<Stationary>(Vec2{10, 0}));
  (void)add(std::make_unique<Stationary>(Vec2{20, 0}));
  manager.scan();
  const auto pairs = manager.connected_pairs();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_LT(pairs[0], pairs[1]);
  EXPECT_LT(pairs[1], pairs[2]);
}

TEST_F(ConnectivityFixture, DuplicateNodeRejected) {
  const NodeId a = add(std::make_unique<Stationary>(Vec2{0, 0}));
  EXPECT_THROW(manager.add_node(a, models[0].get()), std::invalid_argument);
}

TEST_F(ConnectivityFixture, PositionOfTracksMobility) {
  const NodeId a = add(std::make_unique<Stationary>(Vec2{12, 34}));
  EXPECT_EQ(manager.position_of(a), (Vec2{12, 34}));
  EXPECT_THROW((void)manager.position_of(NodeId(99)), std::invalid_argument);
}

TEST_F(ConnectivityFixture, LinkUpEventsSortedWithinScan) {
  // A crowd that all comes into range at once: one scan must report the
  // new links in ascending (a, b) order regardless of insertion order.
  for (int i = 5; i >= 0; --i) {  // reverse insertion order on purpose
    models.push_back(std::make_unique<Stationary>(Vec2{10.0 * i, 0}));
    manager.add_node(NodeId(i), models.back().get());
  }
  manager.scan();
  ASSERT_EQ(events.size(), 15u);  // 6 nodes within 50 m: all pairs connect
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE(events[i].up);
    EXPECT_LT(events[i].a, events[i].b);
    if (i == 0) continue;
    const bool ordered =
        events[i - 1].a < events[i].a ||
        (events[i - 1].a == events[i].a && events[i - 1].b < events[i].b);
    EXPECT_TRUE(ordered) << "link-up " << i << " out of order";
  }
}

TEST_F(ConnectivityFixture, LinkDownEventsSortedWithinScan) {
  // Three satellites around a hub all leave range between t=0 and t=10; the
  // teardown events of one scan must also arrive in ascending (a, b) order.
  (void)add(std::make_unique<Stationary>(Vec2{0, 0}));
  for (int i = 3; i >= 1; --i) {  // reverse insertion order on purpose
    models.push_back(std::make_unique<WaypointTrace>(std::vector<WaypointTrace::Keyframe>{
        {SimTime::seconds(0), {20.0 * i, 0}}, {SimTime::seconds(1), {1000.0 * i, 0}}}));
    manager.add_node(NodeId(i), models.back().get());
  }
  manager.start();
  sim.run_until(SimTime::seconds(3));
  std::vector<LinkEvent> downs;
  for (const auto& e : events) {
    if (!e.up) downs.push_back(e);
  }
  ASSERT_EQ(downs.size(), 6u);  // hub-satellite x3 + satellite pairs x3
  EXPECT_TRUE(std::all_of(downs.begin(), downs.end(),
                          [&](const LinkEvent& e) { return e.time_s == downs[0].time_s; }));
  for (std::size_t i = 1; i < downs.size(); ++i) {
    const bool ordered = downs[i - 1].a < downs[i].a ||
                         (downs[i - 1].a == downs[i].a && downs[i - 1].b < downs[i].b);
    EXPECT_TRUE(ordered) << "link-down " << i << " out of order";
  }
}

TEST_F(ConnectivityFixture, PositionCacheConsistentWithinTick) {
  // position_of must serve the whole tick from the scan's cache: two queries
  // in the same tick agree, and the cache refreshes after time advances.
  (void)add(std::make_unique<WaypointTrace>(std::vector<WaypointTrace::Keyframe>{
      {SimTime::seconds(0), {0, 0}}, {SimTime::seconds(100), {1000, 0}}}));
  manager.start();
  sim.run_until(SimTime::seconds(10));
  const Vec2 first = manager.position_of(NodeId(0));
  const Vec2 second = manager.position_of(NodeId(0));
  EXPECT_EQ(first.x, second.x);
  EXPECT_EQ(first.y, second.y);
  EXPECT_NEAR(first.x, 100.0, 1e-6);  // 10 m/s for 10 s
  sim.run_until(SimTime::seconds(20));
  EXPECT_NEAR(manager.position_of(NodeId(0)).x, 200.0, 1e-6);
}

// --- TransferManager -------------------------------------------------------------

class TransferFixture : public ::testing::Test {
 protected:
  TransferFixture() : tm(sim, 250'000.0) {
    tm.on_complete([this](const TransferManager::Transfer& t, SimTime d) {
      completed.push_back(t);
      durations.push_back(d.sec());
    });
    tm.on_abort([this](const TransferManager::Transfer& t) { aborted.push_back(t); });
  }

  sim::Simulator sim;
  TransferManager tm;
  std::vector<TransferManager::Transfer> completed;
  std::vector<double> durations;
  std::vector<TransferManager::Transfer> aborted;
};

TEST_F(TransferFixture, CompletesAfterBandwidthDelay) {
  tm.link_up(NodeId(0), NodeId(1));
  ASSERT_TRUE(tm.start(NodeId(0), NodeId(1), util::MessageId(7), 1'000'000));
  EXPECT_TRUE(tm.link_busy(NodeId(0), NodeId(1)));
  sim.run_until(SimTime::seconds(10));
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_DOUBLE_EQ(durations[0], 4.0);  // 1 MB at 250 kB/s
  EXPECT_EQ(completed[0].message, util::MessageId(7));
  EXPECT_FALSE(tm.link_busy(NodeId(0), NodeId(1)));
  EXPECT_EQ(tm.transfers_completed(), 1u);
  EXPECT_EQ(tm.bytes_delivered(), 1'000'000u);
}

TEST_F(TransferFixture, OneTransferPerLink) {
  tm.link_up(NodeId(0), NodeId(1));
  ASSERT_TRUE(tm.start(NodeId(0), NodeId(1), util::MessageId(1), 1000));
  EXPECT_FALSE(tm.start(NodeId(0), NodeId(1), util::MessageId(2), 1000));
  EXPECT_FALSE(tm.start(NodeId(1), NodeId(0), util::MessageId(3), 1000));  // same link
}

TEST_F(TransferFixture, NoLinkNoTransfer) {
  EXPECT_FALSE(tm.start(NodeId(0), NodeId(1), util::MessageId(1), 1000));
  EXPECT_FALSE(tm.link_exists(NodeId(0), NodeId(1)));
}

TEST_F(TransferFixture, LinkDownAbortsInFlight) {
  tm.link_up(NodeId(0), NodeId(1));
  ASSERT_TRUE(tm.start(NodeId(0), NodeId(1), util::MessageId(5), 1'000'000));
  (void)sim.schedule_at(SimTime::seconds(2), [this] { tm.link_down(NodeId(0), NodeId(1)); });
  sim.run_until(SimTime::seconds(10));
  EXPECT_TRUE(completed.empty());
  ASSERT_EQ(aborted.size(), 1u);
  EXPECT_EQ(aborted[0].message, util::MessageId(5));
  EXPECT_EQ(tm.transfers_aborted(), 1u);
  EXPECT_FALSE(tm.link_exists(NodeId(0), NodeId(1)));
}

TEST_F(TransferFixture, LinkDownWithoutTransferIsQuiet) {
  tm.link_up(NodeId(0), NodeId(1));
  tm.link_down(NodeId(0), NodeId(1));
  tm.link_down(NodeId(0), NodeId(1));  // idempotent
  EXPECT_TRUE(aborted.empty());
}

TEST_F(TransferFixture, SequentialTransfersOnSameLink) {
  tm.link_up(NodeId(0), NodeId(1));
  ASSERT_TRUE(tm.start(NodeId(0), NodeId(1), util::MessageId(1), 250'000));
  sim.run_until(SimTime::seconds(1.5));
  ASSERT_TRUE(tm.start(NodeId(1), NodeId(0), util::MessageId(2), 250'000));
  sim.run_until(SimTime::seconds(5));
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed[0].from, NodeId(0));
  EXPECT_EQ(completed[1].from, NodeId(1));
}

TEST_F(TransferFixture, DurationForMatchesBitrate) {
  EXPECT_DOUBLE_EQ(tm.duration_for(500'000).sec(), 2.0);
}

TEST_F(TransferFixture, InvalidStartArgsRejected) {
  tm.link_up(NodeId(0), NodeId(1));
  EXPECT_THROW((void)tm.start(NodeId(0), NodeId(1), util::MessageId(1), 0),
               std::invalid_argument);
  EXPECT_THROW((void)tm.start(NodeId(0), NodeId(1), util::MessageId(), 10),
               std::invalid_argument);
}

// --- ContactTrace -----------------------------------------------------------------

TEST(ContactTrace, RecordsDurations) {
  ContactTrace trace;
  trace.record_up(NodeId(0), NodeId(1), SimTime::seconds(10));
  trace.record_down(NodeId(1), NodeId(0), SimTime::seconds(25));  // order-insensitive
  trace.finalize(SimTime::seconds(100));
  ASSERT_EQ(trace.count(), 1u);
  EXPECT_DOUBLE_EQ(trace.contacts()[0].duration().sec(), 15.0);
  EXPECT_DOUBLE_EQ(trace.mean_duration_s(), 15.0);
}

TEST(ContactTrace, FinalizeClosesOpenContacts) {
  ContactTrace trace;
  trace.record_up(NodeId(0), NodeId(1), SimTime::seconds(90));
  trace.finalize(SimTime::seconds(100));
  ASSERT_EQ(trace.count(), 1u);
  EXPECT_DOUBLE_EQ(trace.contacts()[0].duration().sec(), 10.0);
}

TEST(ContactTrace, DownWithoutUpIgnored) {
  ContactTrace trace;
  trace.record_down(NodeId(0), NodeId(1), SimTime::seconds(5));
  trace.finalize(SimTime::seconds(10));
  EXPECT_EQ(trace.count(), 0u);
}

TEST(ContactTrace, SortedByStartAfterFinalize) {
  ContactTrace trace;
  trace.record_up(NodeId(2), NodeId(3), SimTime::seconds(50));
  trace.record_up(NodeId(0), NodeId(1), SimTime::seconds(10));
  trace.record_down(NodeId(2), NodeId(3), SimTime::seconds(60));
  trace.record_down(NodeId(0), NodeId(1), SimTime::seconds(20));
  trace.finalize(SimTime::seconds(100));
  ASSERT_EQ(trace.count(), 2u);
  EXPECT_LT(trace.contacts()[0].up, trace.contacts()[1].up);
  EXPECT_DOUBLE_EQ(trace.total_contact_time_s(), 20.0);
}

}  // namespace
}  // namespace dtnic::net
