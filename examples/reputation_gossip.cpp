/// Reputation gossip (the DRM in isolation): a malicious node plants bogus
/// keywords on relayed photos to farm tag rewards. The first honest victim
/// rates it down after inspecting the content; the opinion then spreads
/// second-hand at every contact (r <- (1-α)·r_remote + α·r_own), until a
/// node that never met the attacker refuses its transfers outright.

#include <iostream>

#include "example_util.h"
#include "util/table.h"

int main() {
  using namespace dtnic;
  using util::SimTime;

  core::DrmParams drm;
  drm.rating_noise_sd = 0.0;

  examples::PocketNetwork net({}, drm);

  core::BehaviorProfile attacker_profile;
  attacker_profile.type = core::BehaviorType::kMalicious;
  attacker_profile.malicious_tags = 3;

  auto& alice = net.add_device("alice");
  auto& mallory = net.add_device("mallory", attacker_profile);
  auto& bob = net.add_device("bob");
  auto& carol = net.add_device("carol");

  // Everyone likes wildlife photos; mallory relays them (and pollutes them).
  for (auto* op : {&bob, &carol}) op->subscribe({"wildlife"}, SimTime::zero());
  mallory.subscribe({"trail"}, SimTime::zero());

  const auto& photo = alice.annotate({"wildlife", "deer"}, SimTime::zero(), 256 * 1024,
                                     msg::Priority::kMedium, 0.9);
  std::cout << "alice publishes photo " << photo.id() << " tagged {wildlife, deer}\n\n";

  // alice -> mallory (relay hop): mallory plants 3 irrelevant tags.
  std::cout << "== alice meets mallory (relay hand-off) ==\n";
  const routing::ForwardPlan relay{photo.id(), routing::TransferRole::kRelay, 1.0, 0.0};
  msg::Message copy = photo;
  copy.record_hop(mallory.host().id(), SimTime::minutes(5));
  mallory.host().router().on_received(mallory.host(), alice.host(), std::move(copy), relay,
                                      SimTime::minutes(5));
  const msg::Message* polluted = mallory.host().buffer().find(photo.id());
  std::cout << "mallory's copy now carries " << polluted->annotations().size()
            << " tags; the planted ones: ";
  for (const auto& a : polluted->annotations_by(mallory.host().id())) {
    std::cout << "'" << net.keywords.name(a.keyword) << "' ";
  }
  std::cout << "\n\n";

  // mallory -> bob (delivery): bob pays, inspects, rates mallory down.
  std::cout << "== mallory delivers to bob ==\n";
  const routing::ForwardPlan deliver{photo.id(), routing::TransferRole::kDestination, 2.0,
                                     0.0};
  msg::Message to_bob = *polluted;
  to_bob.record_hop(bob.host().id(), SimTime::minutes(20));
  bob.host().router().on_received(bob.host(), mallory.host(), std::move(to_bob), deliver,
                                  SimTime::minutes(20));
  std::cout << "bob's rating of mallory after judging the planted tags: "
            << util::Table::cell(bob.rate_node(mallory.host().id()), 2) << " / 5\n";
  std::cout << "carol's rating of mallory (never met): "
            << util::Table::cell(carol.rate_node(mallory.host().id()), 2)
            << " / 5 (the neutral prior)\n\n";

  // bob gossips with carol: the opinion spreads second-hand.
  std::cout << "== bob meets carol (reputation exchange) ==\n";
  (void)net.contact(bob, carol, SimTime::hours(1));
  std::cout << "carol's rating of mallory after gossip: "
            << util::Table::cell(carol.rate_node(mallory.host().id()), 2) << " / 5\n\n";

  // mallory now tries to send carol a fresh (legitimate!) photo: refused.
  std::cout << "== mallory tries to deliver to carol ==\n";
  const auto& fresh = mallory.annotate({"wildlife", "fox"}, SimTime::hours(2), 256 * 1024,
                                       msg::Priority::kMedium, 0.9);
  const routing::ForwardPlan offer{fresh.id(), routing::TransferRole::kDestination, 2.0, 0.0};
  const auto decision = carol.host().router().accept(carol.host(), mallory.host(), fresh,
                                                     offer, SimTime::hours(2));
  std::cout << "carol's admission decision: " << routing::accept_name(decision) << "\n";
  std::cout << "\nthe DRM quarantined the attacker network-wide after a single first-hand\n"
               "observation plus one gossip exchange.\n";
  return 0;
}
