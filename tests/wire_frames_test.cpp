#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "msg/keyword.h"
#include "msg/message.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "wire/frames.h"

namespace dtnic::wire {
namespace {

using msg::KeywordId;
using msg::MessageId;
using msg::Priority;
using routing::AcceptDecision;
using routing::NodeId;
using routing::TransferRole;
using util::SimTime;

/// One representative of every frame type, with non-default field values so
/// a transposed field fails equality.
std::vector<Frame> sample_frames() {
  std::vector<Frame> frames;
  frames.push_back(HelloFrame{NodeId(7), 1, -3, 0xfeedface12345678ull});
  frames.push_back(ByeFrame{NodeId(9)});
  frames.push_back(InterestDigestFrame{
      NodeId(2),
      {InterestEntry{KeywordId(0), 0.75, true}, InterestEntry{KeywordId(5), 0.125, false}}});
  frames.push_back(RatingGossipFrame{
      NodeId(3), {RatingEntry{NodeId(1), 4.5}, RatingEntry{NodeId(8), 0.5}}});
  OfferFrame offer;
  offer.message = MessageId(0x100001);
  offer.source = NodeId(1);
  offer.created_at = SimTime::seconds(12.5);
  offer.size_bytes = 65536;
  offer.priority = Priority::kHigh;
  offer.quality = 0.875;
  offer.role = TransferRole::kDestination;
  offer.promise = 7.0;
  offer.prepay = 0.25;
  frames.push_back(offer);
  frames.push_back(OfferReplyFrame{MessageId(0x100001), AcceptDecision::kNoTokens});
  frames.push_back(DataFrame{MessageId(0x100001), 2, 5, {0xde, 0xad, 0xbe, 0xef}});
  frames.push_back(ReceiptFrame{MessageId(0x100001), TransferRole::kRelay, 6.5});
  return frames;
}

TEST(WireFrames, EveryTypeRoundTrips) {
  for (const Frame& f : sample_frames()) {
    std::vector<std::uint8_t> bytes;
    const std::size_t n = encode_frame(f, bytes);
    EXPECT_EQ(n, bytes.size());
    auto decoded = decode_frame(bytes);
    ASSERT_TRUE(decoded.has_value()) << "frame type "
                                     << static_cast<int>(frame_type(f));
    EXPECT_EQ(decoded->consumed, bytes.size());
    EXPECT_EQ(decoded->frame, f);
  }
}

TEST(WireFrames, BackToBackFramesDecodeSequentially) {
  std::vector<std::uint8_t> bytes;
  const std::vector<Frame> frames = sample_frames();
  for (const Frame& f : frames) encode_frame(f, bytes);

  std::size_t offset = 0;
  for (const Frame& f : frames) {
    auto decoded = decode_frame(std::span(bytes).subspan(offset));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->frame, f);
    offset += decoded->consumed;
  }
  EXPECT_EQ(offset, bytes.size());
}

// --- totality: truncation, corruption, garbage -------------------------------

TEST(WireFrames, EveryTruncationPrefixIsRejected) {
  for (const Frame& f : sample_frames()) {
    std::vector<std::uint8_t> bytes;
    encode_frame(f, bytes);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_FALSE(decode_frame(std::span(bytes.data(), len)).has_value())
          << "type " << static_cast<int>(frame_type(f)) << " prefix " << len;
    }
  }
}

TEST(WireFrames, BadMagicVersionTypeAreRejected) {
  std::vector<std::uint8_t> bytes;
  encode_frame(ByeFrame{NodeId(1)}, bytes);

  auto corrupt = bytes;
  corrupt[0] ^= 0xff;  // magic low byte
  EXPECT_FALSE(decode_frame(corrupt).has_value());

  corrupt = bytes;
  corrupt[2] = 2;  // unknown protocol version
  EXPECT_FALSE(decode_frame(corrupt).has_value());

  corrupt = bytes;
  corrupt[3] = 0;  // type 0 is not assigned
  EXPECT_FALSE(decode_frame(corrupt).has_value());
  corrupt[3] = 9;  // one past kReceipt
  EXPECT_FALSE(decode_frame(corrupt).has_value());
}

TEST(WireFrames, OversizedLengthIsRejected) {
  std::vector<std::uint8_t> bytes;
  encode_frame(ByeFrame{NodeId(1)}, bytes);
  // Claim a payload beyond the cap; decoder must refuse before trying to read.
  bytes[4] = 0x01;
  bytes[5] = 0x00;
  bytes[6] = 0x01;  // length = 0x010001 = 65537 > 60 KiB
  bytes[7] = 0x00;
  EXPECT_FALSE(decode_frame(bytes).has_value());
}

TEST(WireFrames, GarbageTailInsidePayloadIsRejected) {
  for (const Frame& f : sample_frames()) {
    std::vector<std::uint8_t> bytes;
    encode_frame(f, bytes);
    // Append one byte to the payload and fix up the length field: the fields
    // no longer consume the payload exactly, so decode must fail.
    bytes.push_back(0x00);
    const std::uint32_t length = static_cast<std::uint32_t>(bytes.size() - kHeaderSize);
    bytes[4] = static_cast<std::uint8_t>(length & 0xff);
    bytes[5] = static_cast<std::uint8_t>((length >> 8) & 0xff);
    EXPECT_FALSE(decode_frame(bytes).has_value())
        << "type " << static_cast<int>(frame_type(f));
  }
}

TEST(WireFrames, InvalidEnumValuesAreRejected) {
  {
    std::vector<std::uint8_t> bytes;
    encode_frame(OfferReplyFrame{MessageId(1), AcceptDecision::kAccept}, bytes);
    bytes[kHeaderSize + 4] = 200;  // decision byte past kRefused
    EXPECT_FALSE(decode_frame(bytes).has_value());
  }
  {
    std::vector<std::uint8_t> bytes;
    encode_frame(ReceiptFrame{MessageId(1), TransferRole::kRelay, 0.0}, bytes);
    bytes[kHeaderSize + 4] = 2;  // role byte: only 0/1 are assigned
    EXPECT_FALSE(decode_frame(bytes).has_value());
  }
  {
    std::vector<std::uint8_t> bytes;
    encode_frame(DataFrame{MessageId(1), 0, 1, {0xaa}}, bytes);
    bytes[kHeaderSize + 4] = 5;  // chunk_index 5 >= chunk_count 1
    EXPECT_FALSE(decode_frame(bytes).has_value());
  }
}

TEST(WireFrames, RandomGarbageNeverDecodes) {
  util::Rng rng(0xf4a5);
  // Random bytes essentially never start with the magic; the decoder must
  // reject them all without crashing (run under ASan in the sanitizer job).
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> noise(rng.below(64));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
    if (noise.size() >= 2 && noise[0] == 0x17 && noise[1] == 0xDC) noise[0] = 0;
    EXPECT_FALSE(decode_frame(noise).has_value());
  }
}

TEST(WireFrames, BitFlipFuzzNeverCrashes) {
  util::Rng rng(0xc0ffee);
  const std::vector<Frame> frames = sample_frames();
  for (int i = 0; i < 2000; ++i) {
    const Frame& f = frames[rng.below(frames.size())];
    std::vector<std::uint8_t> bytes;
    encode_frame(f, bytes);
    // Flip up to three random bits; decode must either fail or produce some
    // valid frame — never UB. (EXPECT-free on purpose: totality is the
    // property, the sanitizers are the oracle.)
    for (int flip = 0; flip < 3; ++flip) {
      bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    }
    (void)decode_frame(bytes);
  }
}

// --- golden vectors ----------------------------------------------------------
// Committed byte-for-byte expectations: any change to these is a wire format
// break and needs a protocol version bump, not a test update.

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (std::uint8_t b : bytes) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

TEST(WireFrames, GoldenHello) {
  std::vector<std::uint8_t> bytes;
  encode_frame(HelloFrame{NodeId(7), 1, 2, 0x1122334455667788ull}, bytes);
  EXPECT_EQ(to_hex(bytes),
            "17dc010112000000"   // magic, ver 1, type 1, length 18
            "07000000"           // node 7
            "0100"               // proto 1
            "02000000"           // rank 2
            "8877665544332211")  // pool hash (little-endian)
      << "HELLO wire layout changed — protocol version bump required";
}

TEST(WireFrames, GoldenBye) {
  std::vector<std::uint8_t> bytes;
  encode_frame(ByeFrame{NodeId(3)}, bytes);
  EXPECT_EQ(to_hex(bytes), "17dc01020400000003000000");
}

TEST(WireFrames, GoldenOfferReply) {
  std::vector<std::uint8_t> bytes;
  encode_frame(OfferReplyFrame{MessageId(0x100002), AcceptDecision::kDuplicate}, bytes);
  EXPECT_EQ(to_hex(bytes),
            "17dc010605000000"  // envelope, type 6, length 5
            "02001000"          // message id 0x100002
            "01");              // decision kDuplicate = 1
}

TEST(WireFrames, GoldenInterestDigest) {
  std::vector<std::uint8_t> bytes;
  encode_frame(InterestDigestFrame{NodeId(1), {InterestEntry{KeywordId(2), 0.5, true}}},
               bytes);
  EXPECT_EQ(to_hex(bytes),
            "17dc010315000000"   // envelope, type 3, length 21
            "01000000"           // node 1
            "01000000"           // 1 entry
            "02000000"           // keyword 2
            "000000000000e03f"   // weight 0.5 (IEEE-754 LE)
            "01");               // direct
}

TEST(WireFrames, GoldenReceipt) {
  std::vector<std::uint8_t> bytes;
  encode_frame(ReceiptFrame{MessageId(5), TransferRole::kDestination, 7.0}, bytes);
  EXPECT_EQ(to_hex(bytes),
            "17dc01080d000000"   // envelope, type 8, length 13
            "05000000"           // message 5
            "00"                 // role destination
            "0000000000001c40"); // amount 7.0
}

// The pool hash is part of the HELLO compatibility contract; pin it to the
// documented algorithm (FNV-1a over NUL-separated names in id order) with an
// independent reimplementation, so an accidental change can't silently split
// the overlay.
TEST(WireFrames, GoldenKeywordPoolHash) {
  msg::KeywordTable table;
  table.intern("news");
  table.intern("weather");
  std::uint64_t expected = 0xcbf29ce484222325ull;
  for (const char c : std::string("news\0weather\0", 13)) {
    expected = (expected ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ull;
  }
  EXPECT_EQ(keyword_pool_hash(table), expected);
  // Order and separator sensitivity.
  msg::KeywordTable reordered;
  reordered.intern("weather");
  reordered.intern("news");
  EXPECT_NE(keyword_pool_hash(table), keyword_pool_hash(reordered));
  msg::KeywordTable merged;
  merged.intern("newsweather");
  EXPECT_NE(keyword_pool_hash(table), keyword_pool_hash(merged));
  msg::KeywordTable empty;
  EXPECT_NE(keyword_pool_hash(table), keyword_pool_hash(empty));
}

// --- full message codec ------------------------------------------------------

msg::Message sample_message() {
  msg::Message m(MessageId(0x200007), NodeId(2), SimTime::seconds(100.25), 4096,
                 Priority::kLow, 0.75);
  m.set_true_keywords({KeywordId(0), KeywordId(3)});
  m.annotate(msg::Annotation{KeywordId(0), NodeId(2), true});
  m.annotate(msg::Annotation{KeywordId(3), NodeId(2), true});
  m.annotate(msg::Annotation{KeywordId(1), NodeId(5), false});
  m.set_mime_type("video/mp4");
  m.set_format("mp4");
  m.set_location(msg::GeoTag{48.8584, 2.2945});
  m.record_hop(NodeId(2), SimTime::seconds(100.25));
  m.record_hop(NodeId(5), SimTime::seconds(160.0));
  m.add_path_rating(msg::PathRating{NodeId(5), NodeId(2), 4.0});
  return m;
}

TEST(WireMessage, FullStateRoundTrips) {
  const msg::Message m = sample_message();
  const std::vector<std::uint8_t> bytes = encode_message(m);
  auto back = decode_message(bytes);
  ASSERT_TRUE(back.has_value());

  EXPECT_EQ(back->id(), m.id());
  EXPECT_EQ(back->source(), m.source());
  EXPECT_EQ(back->created_at(), m.created_at());
  EXPECT_EQ(back->size_bytes(), m.size_bytes());
  EXPECT_EQ(back->priority(), m.priority());
  EXPECT_EQ(back->quality(), m.quality());
  EXPECT_EQ(back->ttl(), m.ttl());
  EXPECT_EQ(back->mime_type(), m.mime_type());
  EXPECT_EQ(back->format(), m.format());
  ASSERT_TRUE(back->location().has_value());
  EXPECT_EQ(back->location()->latitude, m.location()->latitude);
  EXPECT_EQ(back->location()->longitude, m.location()->longitude);
  EXPECT_EQ(back->true_keywords(), m.true_keywords());
  EXPECT_EQ(back->annotations().size(), m.annotations().size());
  EXPECT_EQ(back->keywords(), m.keywords());
  ASSERT_EQ(back->path().size(), m.path().size());
  for (std::size_t i = 0; i < m.path().size(); ++i) {
    EXPECT_EQ(back->path()[i].node, m.path()[i].node);
    EXPECT_EQ(back->path()[i].received_at, m.path()[i].received_at);
  }
  ASSERT_EQ(back->path_ratings().size(), m.path_ratings().size());
  EXPECT_EQ(back->path_ratings()[0].rating, m.path_ratings()[0].rating);
}

// The default TTL is SimTime::infinity ("never expires"); the codec must not
// turn it into a finite deadline.
TEST(WireMessage, InfiniteTtlSurvives) {
  msg::Message m(MessageId(1), NodeId(1), SimTime::zero(), 16, Priority::kMedium, 1.0);
  ASSERT_TRUE(std::isinf(m.ttl().sec()));
  auto back = decode_message(encode_message(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::isinf(back->ttl().sec()));
  EXPECT_EQ(back->ttl(), SimTime::infinity());
}

TEST(WireMessage, TruncationAndTailAreRejected) {
  const std::vector<std::uint8_t> bytes = encode_message(sample_message());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode_message(std::span(bytes.data(), len)).has_value()) << len;
  }
  std::vector<std::uint8_t> tail = bytes;
  tail.push_back(0x00);
  EXPECT_FALSE(decode_message(tail).has_value());
}

TEST(WireMessage, EncodingIsDeterministic) {
  EXPECT_EQ(encode_message(sample_message()), encode_message(sample_message()));
}

}  // namespace
}  // namespace dtnic::wire
