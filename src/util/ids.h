#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

/// \file ids.h
/// Strongly typed identifiers. A NodeId is never accidentally usable where a
/// MessageId is expected; both are cheap 32-bit values with an explicit
/// invalid sentinel.

namespace dtnic::util {

/// CRTP-free strong integer id. \p Tag distinguishes unrelated id spaces.
template <typename Tag>
class StrongId {
 public:
  using underlying = std::uint32_t;
  static constexpr underlying kInvalid = std::numeric_limits<underlying>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying v) : value_(v) {}

  [[nodiscard]] constexpr underlying value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value();
  }

 private:
  underlying value_ = kInvalid;
};

struct NodeTag {};
struct MessageTag {};
struct KeywordTag {};

using NodeId = StrongId<NodeTag>;
using MessageId = StrongId<MessageTag>;
using KeywordId = StrongId<KeywordTag>;

}  // namespace dtnic::util

namespace std {
template <typename Tag>
struct hash<dtnic::util::StrongId<Tag>> {
  size_t operator()(dtnic::util::StrongId<Tag> id) const noexcept {
    return std::hash<typename dtnic::util::StrongId<Tag>::underlying>{}(id.value());
  }
};
}  // namespace std
