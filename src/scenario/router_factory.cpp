#include "scenario/router_factory.h"

#include "core/incentive_router.h"
#include "core/pi_router.h"
#include "routing/chitchat/chitchat_router.h"
#include "routing/direct_delivery.h"
#include "routing/epidemic.h"
#include "routing/first_contact.h"
#include "routing/nectar.h"
#include "routing/prophet.h"
#include "routing/spray_and_wait.h"
#include "routing/two_hop.h"
#include "routing/vaccine_epidemic.h"
#include "util/assert.h"

namespace dtnic::scenario {

namespace {

using routing::RouterKind;
using RouterPtr = std::unique_ptr<routing::Router>;

void require_base(const RouterBuildContext& ctx) {
  DTNIC_REQUIRE_MSG(ctx.cfg != nullptr && ctx.oracle != nullptr,
                    "router build context needs a config and a destination oracle");
}

RouterPtr build_incentive(const RouterBuildContext& ctx) {
  require_base(ctx);
  DTNIC_REQUIRE_MSG(ctx.world != nullptr, "incentive scheme needs an IncentiveWorld");
  DTNIC_REQUIRE_MSG(ctx.master_rng != nullptr, "incentive scheme needs a master RNG");
  // The only scheme that forks the master RNG; the fork both derives the
  // per-node stream and advances the parent, exactly as the pre-factory
  // Scheme switch did (see RouterBuildContext::master_rng).
  return std::make_unique<core::IncentiveRouter>(
      *ctx.oracle, ctx.cfg->chitchat, ctx.contact_quantum, ctx.world, ctx.behavior,
      ctx.master_rng->fork(ctx.rng_stream_tag + ctx.node_index * 16));
}

RouterPtr build_pi_incentive(const RouterBuildContext& ctx) {
  require_base(ctx);
  DTNIC_REQUIRE_MSG(ctx.world != nullptr && ctx.pi_bank != nullptr,
                    "pi-incentive scheme needs an IncentiveWorld and an escrow bank");
  return std::make_unique<core::PiRouter>(*ctx.oracle, ctx.cfg->chitchat,
                                          ctx.contact_quantum, ctx.world, ctx.pi_bank,
                                          ctx.cfg->pi);
}

RouterPtr build_chitchat(const RouterBuildContext& ctx) {
  require_base(ctx);
  return std::make_unique<routing::ChitChatRouter>(*ctx.oracle, ctx.cfg->chitchat,
                                                   ctx.contact_quantum);
}

RouterPtr build_epidemic(const RouterBuildContext& ctx) {
  require_base(ctx);
  return std::make_unique<routing::EpidemicRouter>(*ctx.oracle);
}

RouterPtr build_direct(const RouterBuildContext& ctx) {
  require_base(ctx);
  return std::make_unique<routing::DirectDeliveryRouter>(*ctx.oracle);
}

RouterPtr build_spray_and_wait(const RouterBuildContext& ctx) {
  require_base(ctx);
  return std::make_unique<routing::SprayAndWaitRouter>(*ctx.oracle, ctx.cfg->spray_copies);
}

RouterPtr build_first_contact(const RouterBuildContext& ctx) {
  require_base(ctx);
  return std::make_unique<routing::FirstContactRouter>(*ctx.oracle);
}

RouterPtr build_vaccine_epidemic(const RouterBuildContext& ctx) {
  require_base(ctx);
  return std::make_unique<routing::VaccineEpidemicRouter>(*ctx.oracle);
}

RouterPtr build_prophet(const RouterBuildContext& ctx) {
  require_base(ctx);
  return std::make_unique<routing::ProphetRouter>(*ctx.oracle, ctx.cfg->prophet);
}

RouterPtr build_nectar(const RouterBuildContext& ctx) {
  require_base(ctx);
  return std::make_unique<routing::NectarRouter>(*ctx.oracle, ctx.cfg->nectar);
}

RouterPtr build_two_hop(const RouterBuildContext& ctx) {
  require_base(ctx);
  return std::make_unique<routing::TwoHopRouter>(*ctx.oracle);
}

}  // namespace

const std::vector<RouterSpec>& router_registry() {
  static const std::vector<RouterSpec> registry = {
      {Scheme::kIncentive, "incentive", RouterKind::kIncentive, &build_incentive},
      {Scheme::kPiIncentive, "pi-incentive", RouterKind::kPiIncentive, &build_pi_incentive},
      {Scheme::kChitChat, "chitchat", RouterKind::kChitChat, &build_chitchat},
      {Scheme::kEpidemic, "epidemic", RouterKind::kEpidemic, &build_epidemic},
      {Scheme::kDirectDelivery, "direct", RouterKind::kDirectDelivery, &build_direct},
      {Scheme::kSprayAndWait, "spray-and-wait", RouterKind::kSprayAndWait,
       &build_spray_and_wait},
      {Scheme::kFirstContact, "first-contact", RouterKind::kFirstContact,
       &build_first_contact},
      {Scheme::kVaccineEpidemic, "vaccine-epidemic", RouterKind::kVaccineEpidemic,
       &build_vaccine_epidemic},
      {Scheme::kProphet, "prophet", RouterKind::kProphet, &build_prophet},
      {Scheme::kNectar, "nectar", RouterKind::kNectar, &build_nectar},
      {Scheme::kTwoHop, "two-hop", RouterKind::kTwoHop, &build_two_hop},
  };
  return registry;
}

const RouterSpec& router_spec(Scheme s) {
  for (const RouterSpec& spec : router_registry()) {
    if (spec.scheme == s) return spec;
  }
  DTNIC_REQUIRE_MSG(false, "scheme missing from the router registry");
  return router_registry().front();  // unreachable
}

const RouterSpec* find_router_spec(std::string_view name) {
  for (const RouterSpec& spec : router_registry()) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

std::unique_ptr<routing::Router> build_router(const RouterBuildContext& ctx) {
  require_base(ctx);
  return router_spec(ctx.cfg->scheme).build(ctx);
}

}  // namespace dtnic::scenario
