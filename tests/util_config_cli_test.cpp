#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.h"
#include "util/config.h"
#include "util/table.h"

namespace dtnic::util {
namespace {

// --- Config -------------------------------------------------------------------

TEST(Config, ParsesKeyValueLines) {
  const auto cfg = Config::parse("a = 1\nb= hello world \n # comment\nc =true\n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "hello world");
  EXPECT_TRUE(cfg.get_bool("c", false));
}

TEST(Config, InlineComments) {
  const auto cfg = Config::parse("speed = 2.5 # m/s\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("speed", 0.0), 2.5);
}

TEST(Config, DefaultsWhenMissing) {
  const Config cfg;
  EXPECT_EQ(cfg.get_int("nope", 9), 9);
  EXPECT_EQ(cfg.get_string("nope", "x"), "x");
  EXPECT_FALSE(cfg.has("nope"));
  EXPECT_FALSE(cfg.get("nope").has_value());
}

TEST(Config, MalformedLineThrowsWithLineNumber) {
  try {
    (void)Config::parse("good = 1\nbad line\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Config, EmptyKeyThrows) {
  EXPECT_THROW((void)Config::parse(" = 5\n"), std::invalid_argument);
}

TEST(Config, BadTypedValueThrows) {
  const auto cfg = Config::parse("x = notanumber\n");
  EXPECT_THROW((void)cfg.get_int("x", 0), std::invalid_argument);
}

TEST(Config, SemicolonSeparatedInlineEntries) {
  const auto cfg = Config::parse("a = 1; b = two ; c=3 # trailing; comment = ignored\n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "two");
  EXPECT_EQ(cfg.get_int("c", 0), 3);
  EXPECT_FALSE(cfg.has("comment"));
  EXPECT_EQ(cfg.entries().size(), 3u);
}

TEST(Config, MergeOverlays) {
  auto base = Config::parse("a = 1\nb = 2\n");
  const auto overlay = Config::parse("b = 3\nc = 4\n");
  base.merge(overlay);
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 3);
  EXPECT_EQ(base.get_int("c", 0), 4);
}

TEST(Config, LoadFileMissingThrows) {
  EXPECT_THROW((void)Config::load_file("/nonexistent/path/cfg.txt"), std::runtime_error);
}

// --- Cli ------------------------------------------------------------------------

TEST(Cli, ParsesEqualsAndSpaceForms) {
  Cli cli;
  cli.add_flag("nodes", "100", "node count");
  cli.add_flag("hours", "6", "sim hours");
  const char* argv[] = {"prog", "--nodes=250", "--hours", "12"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("nodes"), 250);
  EXPECT_EQ(cli.get_int("hours"), 12);
  EXPECT_TRUE(cli.was_set("nodes"));
}

TEST(Cli, DefaultsApply) {
  Cli cli;
  cli.add_flag("x", "3.5", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 3.5);
  EXPECT_FALSE(cli.was_set("x"));
}

TEST(Cli, BareBooleanFlag) {
  Cli cli;
  cli.add_flag("verbose", "false", "");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli;
  cli.add_flag("x", "1", "");
  const char* argv[] = {"prog", "--y=2"};
  EXPECT_THROW((void)cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, PositionalArgumentThrows) {
  Cli cli;
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW((void)cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli;
  cli.add_flag("x", "1", "the x");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.usage("prog").find("--x"), std::string::npos);
}

TEST(Cli, DuplicateFlagDeclarationThrows) {
  Cli cli;
  cli.add_flag("x", "1", "");
  EXPECT_THROW(cli.add_flag("x", "2", ""), std::invalid_argument);
}

// --- Table ------------------------------------------------------------------------

TEST(Table, AlignedOutputContainsHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"mdr", Table::cell(0.75, 2)});
  t.add_row({"traffic", Table::cell(std::size_t{1234})});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("0.75"), std::string::npos);
  EXPECT_NE(out.find("1234"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(1.23456, 2), "1.23");
  EXPECT_EQ(Table::cell(std::size_t{42}), "42");
  EXPECT_EQ(Table::cell(static_cast<long long>(-3)), "-3");
}

}  // namespace
}  // namespace dtnic::util
