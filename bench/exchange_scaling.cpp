#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/scenario.h"

/// Strong-scaling benchmark for the staged parallel exchange (DESIGN.md
/// "Parallel exchange phase"): one fixed churny incentive scenario, exchange
/// thread counts {1, 2, 4, 8}. Row 1 is literally the serial pump (the
/// staged path only engages above one thread), so comparing it against the
/// staged rows measures both the split's overhead and its speedup directly.
/// Because the staged exchange is bit-identical to the serial pump by
/// construction, the only thing that may change across rows is wall-clock
/// time — the benchmark asserts created/traffic counts to prove it timed
/// the same work.
///
/// Emits BENCH_exchange_scaling.json (schema dtnic.exchange_scaling_bench.v1):
///   DTNIC_BENCH_JSON_EXCHANGE_SCALING  output path (default: alongside cwd)
///   DTNIC_BENCH_JSON_FAST              any value: smoke-test scale for CI
///
/// The reported metric is exchange (plan + commit) nanoseconds per pump
/// tick; speedup on a given host is bounded by its core count — a
/// single-core CI box will report ~1x for every row, which is expected.

namespace {

using namespace dtnic;

struct Sample {
  double ns_per_tick = 0.0;
  std::uint64_t plan_ns = 0;
  std::uint64_t commit_ns = 0;
  std::size_t ticks = 0;
  std::size_t created = 0;
  std::uint64_t traffic = 0;
};

Sample time_world(std::size_t nodes, double hours, std::size_t exchange_threads) {
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(nodes, hours);
  cfg.scheme = scenario::Scheme::kIncentive;
  cfg.selfish_fraction = 0.2;
  cfg.malicious_fraction = 0.1;
  cfg.max_speed_mps = 8.0;  // contact churn keeps the exchange busy
  cfg.exchange_threads = exchange_threads;

  scenario::Scenario s(cfg);
  const scenario::RunResult r = s.run();

  Sample sample;
  sample.plan_ns = r.timing.routing_plan_ns;
  sample.commit_ns = r.timing.routing_commit_ns;
  sample.ticks = static_cast<std::size_t>(cfg.sim_hours * 3600.0 / cfg.scan_interval_s);
  sample.ns_per_tick =
      static_cast<double>(r.timing.routing_plan_ns + r.timing.routing_commit_ns) /
      static_cast<double>(sample.ticks);
  sample.created = r.created;
  sample.traffic = r.traffic;
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = std::getenv("DTNIC_BENCH_JSON_FAST") != nullptr;
  std::size_t nodes = fast ? 48 : 200;
  const double hours = fast ? 0.25 : 2.0;
  if (argc > 1) nodes = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));

  const char* path_env = std::getenv("DTNIC_BENCH_JSON_EXCHANGE_SCALING");
  const std::string path = path_env != nullptr ? path_env : "BENCH_exchange_scaling.json";

  constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};
  // Smoke-scale runs finish in milliseconds, where scheduler noise on a
  // shared host swings multi-thread wall time severalfold; report the best
  // of a few repetitions (the run itself is deterministic, only the clock
  // varies). Full-scale runs are long enough to self-average.
  const std::size_t reps = fast ? 5 : 1;
  std::vector<Sample> samples;
  for (const std::size_t threads : kThreadCounts) {
    Sample best = time_world(nodes, hours, threads);
    for (std::size_t rep = 1; rep < reps; ++rep) {
      const Sample again = time_world(nodes, hours, threads);
      if (again.ns_per_tick < best.ns_per_tick) best = again;
    }
    samples.push_back(best);
    std::cout << "exchange_threads=" << threads
              << "  ns_per_tick=" << samples.back().ns_per_tick
              << "  traffic=" << samples.back().traffic
              << "  speedup=" << samples.front().ns_per_tick / samples.back().ns_per_tick
              << "x\n";
  }

  // Same seed, same world: every row must have simulated the same run.
  for (const Sample& s : samples) {
    if (s.created != samples.front().created || s.traffic != samples.front().traffic) {
      std::cerr << "exchange_scaling: output mismatch across thread counts — "
                   "the staged exchange is not reproducing the serial pump\n";
      return 1;
    }
  }

  std::ofstream os(path);
  if (!os) {
    std::cerr << "exchange_scaling: cannot write " << path << "\n";
    return 1;
  }
  os << "{\n  \"schema\": \"dtnic.exchange_scaling_bench.v1\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) os << ",\n";
    os << "    {\"kernel\": \"staged_exchange\", \"nodes\": " << nodes
       << ", \"exchange_threads\": " << kThreadCounts[i]
       << ", \"iterations\": " << samples[i].ticks
       << ", \"ns_per_tick\": " << samples[i].ns_per_tick
       << ", \"plan_ns\": " << samples[i].plan_ns
       << ", \"commit_ns\": " << samples[i].commit_ns
       << ", \"traffic\": " << samples[i].traffic << "}";
  }
  os << "\n  ]\n}\n";
  if (!os.flush()) {
    std::cerr << "exchange_scaling: write failed for " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}
